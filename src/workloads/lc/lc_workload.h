// Latency-critical workload models: Redis-, Memcached-, MongoDB- and
// Silo-like servers (the paper's Table 1 set), scaled per DESIGN.md §5.
//
// Each model owns an address space on the tiered memory, hosts a real storage
// engine (HashStore or BTreeStore) in it, and serves one request at a time:
// serve() picks a key from the request distribution, walks the engine's
// actual probe/index path, and returns the request's service time — a fixed
// CPU component plus the tier-dependent latency of every modelled miss. The
// FMem-sensitivity of each workload is therefore an emergent property of
// where its pages currently are, which is the mechanism behind every LC
// result in the paper (Figures 1, 2, 5, 8).
//
// Calibration: the factory derives (base_cpu, record_misses) from two
// targets — max_load_krps at 100% FMem and the SMEM_ALL/FMEM_ALL throughput
// ratio — via service-time algebra; see lc_workload.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/address_space.h"
#include "workloads/kv/btree_store.h"
#include "workloads/kv/hash_store.h"

namespace mtat {

enum class LCKind : std::uint8_t { kRedis, kMemcached, kMongoDB, kSilo };

/// How request keys are drawn. The paper drives all four LC workloads with
/// uniformly distributed requests (§2.2, §5); zipfian is kept for ablations.
enum class RequestDist : std::uint8_t { kUniform, kZipfian };

struct LCConfig {
  std::string name;
  LCKind kind = LCKind::kRedis;
  int threads = 1;               ///< serving threads (k of the M/G/k queue)
  std::uint64_t n_records = 0;
  Bytes record_size = 1024;
  Duration slo = milliseconds(20);      ///< P99 SLO
  double max_load_krps = 8.0;           ///< calibration: max tput at FMem 100%
  double smem_throughput_ratio = 0.78;  ///< calibration: SMEM_ALL max / FMEM_ALL max
  double read_fraction = 1.0;           ///< YCSB-C is 100% reads
  RequestDist dist = RequestDist::kUniform;
  double zipf_theta = 0.99;
  std::uint64_t sample_period = 256;  ///< PEBS-like sampling (denser than BE: compressed-time
                                      ///< equivalent of the paper's per-interval sample volume)
  // Silo-style transactions: touches per transaction across tables.
  int txn_reads = 0;
  int txn_writes = 0;
  int n_tables = 1;
};

/// Paper Table 1, scaled: Redis 1 thread / 1 KiB records; Memcached 8 threads
/// / 4 KiB values; MongoDB 8 threads / 1 KiB documents behind a B+-tree; Silo
/// 1 thread / TPC-C-like multi-table read-write transactions.
LCConfig redis_config();
LCConfig memcached_config();
LCConfig mongodb_config();
LCConfig silo_config();
/// All four, in paper order.
std::vector<LCConfig> all_lc_configs();

class LCWorkload {
 public:
  /// Allocates the workload's address space under `alloc` and builds its
  /// storage engine. `seed` drives only this workload's key choices.
  LCWorkload(TieredMemory& mem, WorkloadId id, const LCConfig& cfg, AllocPolicy alloc,
             std::uint64_t seed);

  /// Serve one request: returns its service time (CPU + memory).
  Duration serve();

  /// Service time a request would see with every page in the given tier —
  /// the analytic envelope used by tests and calibration checks.
  Duration ideal_service_time(TierId t) const;

  AddressSpace& space() { return *space_; }
  const LCConfig& config() const { return cfg_; }
  WorkloadId id() const { return id_; }
  Bytes rss() const { return space_->size(); }
  Duration base_cpu() const { return base_cpu_; }
  /// Total modelled misses per request (index/probe path + record touches).
  std::uint64_t misses_per_request() const {
    const int touches = cfg_.kind == LCKind::kSilo ? cfg_.txn_reads + cfg_.txn_writes : 1;
    return fixed_misses_ + record_misses_ * static_cast<std::uint64_t>(touches);
  }
  std::uint64_t record_misses() const { return record_misses_; }
  std::uint64_t requests_served() const { return served_; }

 private:
  std::uint64_t pick_key(std::uint64_t n);

  TieredMemory* mem_;
  WorkloadId id_;
  LCConfig cfg_;
  Duration base_cpu_ = 0;
  std::uint64_t record_misses_ = 0;
  std::uint64_t fixed_misses_ = 0;  // probe/index misses per request, for ideal_service_time
  std::unique_ptr<AddressSpace> space_;
  std::unique_ptr<HashStore> hash_;
  std::vector<std::unique_ptr<BTreeStore>> tables_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  Rng rng_;
  std::uint64_t served_ = 0;
};

}  // namespace mtat
