#include "workloads/lc/lc_workload.h"

#include <cmath>
#include <stdexcept>

namespace mtat {

LCConfig redis_config() {
  LCConfig c;
  c.name = "redis";
  c.kind = LCKind::kRedis;
  c.threads = 1;  // single-threaded server, as in the paper's setup
  c.n_records = 2'000'000;
  c.record_size = 1024;
  c.slo = milliseconds(20);
  c.max_load_krps = 8.0;  // paper: 80 KRPS, scaled x1/10 (DESIGN.md §5)
  c.smem_throughput_ratio = 0.78;
  return c;
}

LCConfig memcached_config() {
  LCConfig c;
  c.name = "memcached";
  c.kind = LCKind::kMemcached;
  c.threads = 8;
  c.n_records = 500'000;
  c.record_size = 4096;  // 100 B key + 4 KiB value
  c.slo = milliseconds(20);
  c.max_load_krps = 24.0;  // paper: 1220 KRPS, scaled to bound sim runtime
  c.smem_throughput_ratio = 0.80;
  return c;
}

LCConfig mongodb_config() {
  LCConfig c;
  c.name = "mongodb";
  c.kind = LCKind::kMongoDB;
  c.threads = 8;
  c.n_records = 2'000'000;
  c.record_size = 1024;
  c.slo = milliseconds(30);
  c.max_load_krps = 12.5;  // paper: 125 KRPS, scaled x1/10
  c.smem_throughput_ratio = 0.78;
  return c;
}

LCConfig silo_config() {
  LCConfig c;
  c.name = "silo";
  c.kind = LCKind::kSilo;
  c.threads = 1;
  c.n_records = 2'000'000;  // split across TPC-C-like tables
  c.record_size = 1024;
  c.slo = milliseconds(15);
  c.max_load_krps = 2.2;  // paper: 11 KRPS, scaled x1/5
  c.smem_throughput_ratio = 0.72;
  c.txn_reads = 10;
  c.txn_writes = 3;
  c.n_tables = 9;  // TPC-C table count
  return c;
}

std::vector<LCConfig> all_lc_configs() {
  return {redis_config(), memcached_config(), mongodb_config(), silo_config()};
}

LCWorkload::LCWorkload(TieredMemory& mem, WorkloadId id, const LCConfig& cfg, AllocPolicy alloc,
                       std::uint64_t seed)
    : mem_(&mem), id_(id), cfg_(cfg), rng_(seed) {
  if (cfg.threads <= 0) throw std::invalid_argument("LCWorkload: threads must be > 0");
  // --- Calibration (DESIGN.md §4) -------------------------------------------
  // The paper defines each SLO at the knee of the latency curve under 100%
  // FMem, with Table 1's max load the largest rate handled without latency
  // divergence. We therefore pick the full-FMem service time S_f so that the
  // open-loop M/G/k P99 at max load sits at ~half the SLO: comfortably
  // compliant, with the knee just above. Using the tail approximation
  // p99(S) ~= S * (1 + ln(100) / (k * (1 - lambda*S/k))), p99 is increasing
  // in S on (0, k/lambda), so bisection solves it. The SMEM/FMEM throughput
  // ratio rho then splits S into misses and base CPU:
  // S_s - S_f = m * (lat_smem - lat_fmem).
  const double lambda = cfg.max_load_krps * 1000.0;           // req/s
  const double k = static_cast<double>(cfg.threads);
  const double p99_target = static_cast<double>(cfg.slo) / 2.0;  // ns
  const auto p99_of = [&](double s) {
    return s * (1.0 + std::log(100.0) / (k * (1.0 - lambda * s / (k * 1e9))));
  };
  double s_lo = 1.0, s_hi = 0.999 * k * 1e9 / lambda;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (s_lo + s_hi);
    (p99_of(mid) < p99_target ? s_lo : s_hi) = mid;
  }
  const double s_f = s_lo;  // ns
  const double s_s = s_f / cfg.smem_throughput_ratio;
  // Calibration is pinned to the two fastest tiers regardless of topology
  // depth: the SLO knee is defined against the FMem/SMem pair of the paper's
  // testbed, and deeper tiers only matter at runtime via actual placement.
  const double lat_gap = static_cast<double>(mem.base_latency(kFastestTier + 1) -
                                             mem.base_latency(kFastestTier));
  if (lat_gap <= 0) throw std::invalid_argument("LCWorkload: degenerate tier latencies");
  const double m_total = (s_s - s_f) / lat_gap;
  const double base =
      s_f - m_total * static_cast<double>(mem.base_latency(kFastestTier));
  if (base <= 0)
    throw std::invalid_argument("LCWorkload: smem_throughput_ratio too low to calibrate");
  base_cpu_ = static_cast<Duration>(base);

  // --- Storage engine --------------------------------------------------------
  switch (cfg.kind) {
    case LCKind::kRedis:
    case LCKind::kMemcached: {
      HashStore::Config hc;
      hc.n_records = cfg.n_records;
      hc.record_size = cfg.record_size;
      space_ = std::make_unique<AddressSpace>(mem, id, HashStore::required_bytes(hc), alloc,
                                              cfg.sample_period);
      hash_ = std::make_unique<HashStore>(*space_, hc);
      fixed_misses_ = static_cast<std::uint64_t>(
          std::llround(hash_->mean_probes() * static_cast<double>(hc.probe_misses)));
      break;
    }
    case LCKind::kMongoDB: {
      BTreeStore::Config bc;
      bc.n_records = cfg.n_records;
      bc.record_size = cfg.record_size;
      space_ = std::make_unique<AddressSpace>(mem, id, BTreeStore::required_bytes(bc), alloc,
                                              cfg.sample_period);
      tables_.push_back(std::make_unique<BTreeStore>(*space_, bc, 0));
      fixed_misses_ =
          static_cast<std::uint64_t>(tables_[0]->levels()) * bc.node_misses;
      break;
    }
    case LCKind::kSilo: {
      if (cfg.n_tables <= 0) throw std::invalid_argument("LCWorkload: n_tables must be > 0");
      BTreeStore::Config bc;
      bc.n_records = cfg.n_records / static_cast<std::uint64_t>(cfg.n_tables);
      bc.record_size = cfg.record_size;
      const Bytes per_table = BTreeStore::required_bytes(bc);
      space_ = std::make_unique<AddressSpace>(
          mem, id, per_table * static_cast<Bytes>(cfg.n_tables), alloc, cfg.sample_period);
      for (int t = 0; t < cfg.n_tables; ++t)
        tables_.push_back(
            std::make_unique<BTreeStore>(*space_, bc, per_table * static_cast<Bytes>(t)));
      fixed_misses_ = static_cast<std::uint64_t>(cfg.txn_reads + cfg.txn_writes) *
                      static_cast<std::uint64_t>(tables_[0]->levels()) * bc.node_misses;
      break;
    }
  }

  // --- Distribute the remaining miss budget over record touches -------------
  const int touches = cfg.kind == LCKind::kSilo ? cfg.txn_reads + cfg.txn_writes : 1;
  const double per_record =
      (m_total - static_cast<double>(fixed_misses_)) / static_cast<double>(touches);
  if (per_record < 1.0)
    throw std::invalid_argument("LCWorkload: miss budget below engine's fixed path");
  record_misses_ = static_cast<std::uint64_t>(std::llround(per_record));
  if (hash_) {
    auto hc = hash_->config();  // rebuild with the calibrated record miss count
    hc.record_misses = record_misses_;
    hash_ = std::make_unique<HashStore>(*space_, hc);
  } else {
    auto bc = tables_[0]->config();
    bc.record_misses = record_misses_;
    std::vector<std::unique_ptr<BTreeStore>> rebuilt;
    const Bytes per_table = BTreeStore::required_bytes(bc);
    for (std::size_t t = 0; t < tables_.size(); ++t)
      rebuilt.push_back(std::make_unique<BTreeStore>(*space_, bc, per_table * t));
    tables_ = std::move(rebuilt);
  }

  if (cfg.dist == RequestDist::kZipfian)
    zipf_ = std::make_unique<ZipfianGenerator>(cfg.n_records, cfg.zipf_theta);
}

std::uint64_t LCWorkload::pick_key(std::uint64_t n) {
  if (zipf_) return (*zipf_)(rng_) % n;
  return rng_.next_below(n);
}

Duration LCWorkload::serve() {
  ++served_;
  Duration mem_lat = 0;
  switch (cfg_.kind) {
    case LCKind::kRedis:
    case LCKind::kMemcached: {
      const std::uint64_t key = pick_key(cfg_.n_records);
      mem_lat = rng_.next_bool(cfg_.read_fraction) ? hash_->get(key) : hash_->put(key);
      break;
    }
    case LCKind::kMongoDB: {
      const std::uint64_t key = pick_key(cfg_.n_records);
      mem_lat = rng_.next_bool(cfg_.read_fraction) ? tables_[0]->get(key) : tables_[0]->put(key);
      break;
    }
    case LCKind::kSilo: {
      const std::uint64_t per_table = tables_[0]->config().n_records;
      for (int i = 0; i < cfg_.txn_reads; ++i)
        mem_lat += tables_[rng_.next_below(tables_.size())]->get(pick_key(per_table));
      for (int i = 0; i < cfg_.txn_writes; ++i)
        mem_lat += tables_[rng_.next_below(tables_.size())]->put(pick_key(per_table));
      break;
    }
  }
  return base_cpu_ + mem_lat;
}

Duration LCWorkload::ideal_service_time(TierId t) const {
  const int touches = cfg_.kind == LCKind::kSilo ? cfg_.txn_reads + cfg_.txn_writes : 1;
  const std::uint64_t m =
      fixed_misses_ + record_misses_ * static_cast<std::uint64_t>(touches);
  return base_cpu_ + m * mem_->latency(t);
}

}  // namespace mtat
