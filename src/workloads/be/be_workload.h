// Best-effort workload engine: profile-driven throughput model + telemetry.
//
// Each BEWorkload owns an experiment-scale address space whose pages carry
// the access-probability profile extracted from its real kernel. Per tick it
// (a) computes the work rate implied by current page placement — cycles plus
// misses x expected tier latency, the expectation maintained incrementally
// via a TieredMemory migration listener — and (b) emits the PEBS-like sampled
// accesses that placement policies actually observe. BE workloads thus look
// to a policy exactly like the paper's: steady, high-frequency access streams
// that dwarf the LC workload's per-page rates.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/alias_sampler.h"
#include "common/rng.h"
#include "common/units.h"
#include "mem/address_space.h"
#include "mem/tiered_memory.h"
#include "workloads/be/page_profile.h"

namespace mtat {

struct BEConfig {
  std::string name;
  std::string description;    ///< Table 2 text
  Bytes rss = 0;              ///< experiment-scale footprint
  double cpu_ns_per_iter = 0; ///< non-memory cost per work unit, per core
  int cores = 4;              ///< cores pinned to this workload (×throughput)
  /// Memory-level parallelism: how many of the workload's misses overlap.
  /// Divides the effective stall per access; this is what makes, e.g.,
  /// XSBench's independent lookups far more access-intensive per second (and
  /// hence more competitive under frequency-based tiering) than BFS's
  /// dependent pointer chases at the same core count.
  double mlp = 1.0;
  /// Time the workload loses per migration of one of its own pages (page-copy
  /// interference plus, for fault-driven policies like TPP, the hint-fault
  /// stall on the access path). Charged against the tick's compute time, so
  /// perpetual churn — TPP's watermark/refill cycle — costs real throughput.
  Duration migration_stall = 3000;  // ns per migrated page
  PageProfile profile;        ///< stretched to bytes_to_pages(rss) pages
  std::uint64_t sample_period = 1024;  ///< PEBS-like sampling divisor
};

class BEWorkload : public MigrationListener {
 public:
  /// `sampler` (may be null) receives the sampled access stream.
  /// The workload registers itself as a migration listener on `mem`, so it
  /// must not be moved and must outlive any further use of `mem`'s placement
  /// primitives.
  BEWorkload(TieredMemory& mem, WorkloadId id, BEConfig cfg, AllocPolicy alloc,
             AccessObserver* sampler, std::uint64_t seed);

  BEWorkload(const BEWorkload&) = delete;
  BEWorkload& operator=(const BEWorkload&) = delete;

  /// Advance the workload by `dt`: accrue iterations at the placement-implied
  /// rate and emit sampled telemetry.
  void tick(Duration dt);

  /// Instantaneous work rate (iterations/s) at the current placement.
  double current_rate() const;

  /// Work rate if the workload's `fmem_pages` hottest pages were in FMem —
  /// the offline-profiling curve PP-M's BE partitioning consumes (§3.2.2).
  double rate_at_pages(std::uint64_t fmem_pages) const;

  /// Rate with the entire footprint in FMem: Perf_full of Eq. 3.
  double perf_full() const { return rate_at_pages(space_->num_pages()); }

  /// Fraction of the access distribution covered by the `fmem_pages` hottest
  /// pages (the ideal-placement hit curve).
  double hit_fraction_at_pages(std::uint64_t fmem_pages) const {
    return best_prefix_[std::min<std::uint64_t>(fmem_pages, space_->num_pages())];
  }

  /// Work rate under explicit per-tier latencies — lets contention-aware
  /// planners evaluate hypothetical placements under hypothetical bandwidth
  /// conditions without touching the live memory state.
  double rate_under(double fmem_weight, double lat_fmem_ns, double lat_smem_ns) const {
    const double expected = fmem_weight * lat_fmem_ns + (1.0 - fmem_weight) * lat_smem_ns;
    const double ns_per_iter =
        cfg_.cpu_ns_per_iter + cfg_.profile.accesses_per_iteration * expected / cfg_.mlp;
    return static_cast<double>(cfg_.cores) * 1e9 / ns_per_iter;
  }

  /// Iterations accrued since the last call (per-interval throughput).
  double take_interval_iterations();
  double total_iterations() const { return total_iterations_; }

  /// Fraction of the access distribution currently resident in the fastest
  /// tier.
  double fmem_weight() const { return tier_weight_[kFastestTier]; }

  /// Fraction of the access distribution resident in tier `t`.
  double tier_weight(TierId t) const { return tier_weight_[t]; }

  WorkloadId id() const { return id_; }
  AddressSpace& space() { return *space_; }
  const BEConfig& config() const { return cfg_; }

 private:
  double rate_for_weight(double fmem_weight) const;
  /// Maintains the incremental per-tier resident weight sums (MigrationListener).
  void on_migration(PageId p, TierId from, TierId to) override;

  TieredMemory* mem_;
  WorkloadId id_;
  BEConfig cfg_;
  std::unique_ptr<AddressSpace> space_;
  AccessObserver* sampler_;
  Rng rng_;
  std::unique_ptr<AliasSampler> alias_;
  std::vector<double> best_prefix_;
  PageId first_page_ = 0;
  /// tier_weight_[t] = summed access probability of this workload's pages
  /// currently resident in tier t (so the entries sum to ~1).
  std::array<double, kMaxTiers> tier_weight_{};
  double total_iterations_ = 0.0;
  double interval_iterations_ = 0.0;
  std::uint64_t migrations_pending_ = 0;
  double sample_carry_ = 0.0;
};

}  // namespace mtat
