#include "workloads/be/be_suite.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "common/thread_annotations.h"
#include "workloads/graph/graph_layout.h"
#include "workloads/graph/kernels.h"
#include "workloads/xsbench/xsbench.h"

namespace mtat {
namespace {

/// Profile extraction runs the real kernel, which is the expensive part of
/// building a BE config — memoize per (workload, scale) for the process. The
/// cache is shared across threads (parallel runner workers build sims
/// concurrently). build() runs under the lock: first-touch extraction is
/// serialized (the extraction kernels are deterministic but heavy, and
/// running two builds of the same key concurrently would waste the work),
/// every later lookup is a cheap map find. std::map node references are
/// stable across inserts, so handing the reference out after unlocking is
/// safe. Note build() must never re-enter the cache: mu_ is not recursive,
/// and the profile builders below only run kernels.
class BEProfileCache {
 public:
  const PageProfile& get(const std::string& key, const std::function<PageProfile()>& build)
      EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) it = cache_.emplace(key, build()).first;
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<std::string, PageProfile> cache_ GUARDED_BY(mu_);
};

const PageProfile& memoized(const std::string& key,
                            const std::function<PageProfile()>& build) {
  // Ownership: the one process-global profile memo. Guarded by its internal
  // mutex, append-only, and keyed purely by (workload, scale) — cached
  // values are deterministic functions of the key, so sharing it across
  // threads cannot fork results.
  static BEProfileCache cache;  // mtat-lint: allow(shared-mutable)
  return cache.get(key, build);
}

int graph_scale(BEScale s) { return s == BEScale::kTest ? 10 : 17; }

PageProfile graph_profile(const std::string& name, BEScale scale,
                          const std::function<KernelStats(GraphLayout&)>& run,
                          bool rmat) {
  return memoized(name + (scale == BEScale::kTest ? "/test" : "/default"), [&] {
    Rng rng(name == "sssp" ? 11 : name == "bfs" ? 22 : 33);
    const int sc = graph_scale(scale);
    const Graph g = rmat ? make_rmat_graph(sc, 16, rng)
                         : make_uniform_graph(1ull << sc, 16ull << sc, rng);
    PageProfile prof = extract_profile(GraphLayout::required_bytes(g), [&](AddressSpace& space) {
      GraphLayout layout(space, g);
      const KernelStats stats = run(layout);
      return stats.edges_processed;
    });
    return prof;
  });
}

PageProfile xsbench_profile(BEScale scale) {
  return memoized(scale == BEScale::kTest ? "xsbench/test" : "xsbench/default", [&] {
    XSBenchKernel::Config xc;
    if (scale == BEScale::kTest) {
      xc.n_gridpoints = 1024;
      xc.n_nuclides = 8;
      xc.points_per_nuclide = 256;
    } else {
      xc.n_gridpoints = 32 * 1024;
      xc.n_nuclides = 68;
      xc.points_per_nuclide = 4096;
    }
    const std::uint64_t lookups = scale == BEScale::kTest ? 20'000 : 200'000;
    return extract_profile(XSBenchKernel::required_bytes(xc), [&](AddressSpace& space) {
      XSBenchKernel kernel(space, xc, /*seed=*/44);
      kernel.run(lookups);
      return lookups;
    });
  });
}

BEConfig make(std::string name, std::string description, const PageProfile& raw, Bytes rss,
              double cpu_ns_per_iter, int cores, double mlp) {
  BEConfig c;
  c.name = std::move(name);
  c.description = std::move(description);
  c.rss = rss;
  c.cpu_ns_per_iter = cpu_ns_per_iter;
  c.cores = cores;
  c.mlp = mlp;
  c.profile = raw.stretched_to(bytes_to_pages(rss));
  return c;
}

}  // namespace

BEConfig sssp_config(BEScale scale, Bytes rss, int cores) {
  const auto& prof = graph_profile(
      "sssp", scale,
      [](GraphLayout& l) {
        std::vector<std::uint64_t> dist;
        return sssp(l, /*source=*/0, /*delta=*/8, dist);
      },
      /*rmat=*/true);
  return make("sssp", "Finds the shortest paths from a single source node.", prof, rss,
              /*cpu_ns_per_iter=*/4.0, cores, /*mlp=*/1.2);
}

BEConfig bfs_config(BEScale scale, Bytes rss, int cores) {
  const auto& prof = graph_profile(
      "bfs", scale,
      [](GraphLayout& l) {
        std::vector<std::uint64_t> dist;
        return bfs(l, /*source=*/0, dist);
      },
      /*rmat=*/false);
  return make("bfs", "Explores all nodes at the current depth level.", prof, rss,
              /*cpu_ns_per_iter=*/3.0, cores, /*mlp=*/1.0);
}

BEConfig pr_config(BEScale scale, Bytes rss, int cores) {
  const auto& prof = graph_profile(
      "pr", scale,
      [](GraphLayout& l) {
        std::vector<double> rank;
        return pagerank(l, /*iterations=*/2, rank);
      },
      /*rmat=*/true);
  return make("pr", "Assigns importance scores to nodes in a directed graph.", prof, rss,
              /*cpu_ns_per_iter=*/2.0, cores, /*mlp=*/2.5);
}

BEConfig xsbench_config(BEScale scale, Bytes rss, int cores) {
  return make("xsbench",
              "Simulates the computational workload of Monte Carlo neutron transport "
              "calculations.",
              xsbench_profile(scale), rss, /*cpu_ns_per_iter=*/30.0, cores, /*mlp=*/6.0);
}

std::vector<BEConfig> be_suite(BEScale scale, Bytes rss, int cores, int n) {
  if (n < 1 || n > 4) throw std::invalid_argument("be_suite: n in [1,4]");
  // Per-workload RSS keeps the paper's Table 2 ratios (35.5/35.2/36.0/31.7 GB).
  const auto scaled = [rss](double ratio) { return static_cast<Bytes>(ratio * rss); };
  const auto build = [&](int idx) {
    switch (idx) {
      case 0: return sssp_config(scale, scaled(1.000), cores);
      case 1: return bfs_config(scale, scaled(0.992), cores);
      case 2: return pr_config(scale, scaled(1.014), cores);
      default: return xsbench_config(scale, scaled(0.893), cores);
    }
  };
  std::vector<int> picks;
  if (n == 2)
    picks = {0, 2};  // §5.4's two-BE setting is {SSSP, PR}
  else
    for (int i = 0; i < n; ++i) picks.push_back(i);
  std::vector<BEConfig> out;
  out.reserve(picks.size());
  for (int i : picks) out.push_back(build(i));
  return out;
}

}  // namespace mtat
