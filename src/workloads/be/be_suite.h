// The paper's Table 2 best-effort workload set, built from real kernel runs.
//
// build-time flow per workload: generate the input (R-MAT or uniform graph,
// XSBench grids), run the real kernel over a scratch address space to extract
// its page-access profile, stretch the profile to the experiment-scale RSS,
// and package it with the calibrated per-iteration CPU cost. Profiles are
// memoized per process — extraction runs each kernel once, not once per
// experiment configuration.
#pragma once

#include <string>
#include <vector>

#include "workloads/be/be_workload.h"

namespace mtat {

/// Extraction scale. kTest uses tiny inputs so unit tests stay fast; kDefault
/// matches DESIGN.md §5 and is used by the benchmark harness.
enum class BEScale { kTest, kDefault };

/// Table 2 configs in paper order: SSSP, BFS, PR, XSBench. `rss` is the
/// experiment-scale footprint each profile is stretched to; cores is the
/// per-workload core count (4 in the paper's main setup).
BEConfig sssp_config(BEScale scale, Bytes rss, int cores);
BEConfig bfs_config(BEScale scale, Bytes rss, int cores);
BEConfig pr_config(BEScale scale, Bytes rss, int cores);
BEConfig xsbench_config(BEScale scale, Bytes rss, int cores);

/// The first `n` of {SSSP, BFS, PR, XSBench}; n=2 gives the paper's two-BE
/// setting {SSSP, PR} (§5.4). Throws for n outside [1, 4].
std::vector<BEConfig> be_suite(BEScale scale, Bytes rss, int cores, int n = 4);

}  // namespace mtat
