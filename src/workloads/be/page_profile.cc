#include "workloads/be/page_profile.h"

#include <algorithm>
#include <stdexcept>

#include "mem/tiered_memory.h"

namespace mtat {
namespace {

/// Counts every access per page of a single scratch workload.
class CountingObserver : public AccessObserver {
 public:
  explicit CountingObserver(std::size_t pages) : counts_(pages, 0) {}
  void on_sampled_access(WorkloadId, PageId p, AccessKind) override { counts_[p]++; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace

PageProfile extract_profile(Bytes footprint,
                            const std::function<std::uint64_t(AddressSpace&)>& body) {
  const std::uint64_t pages = bytes_to_pages(footprint);
  // Scratch substrate: all pages in the slower tier of a two-tier topology —
  // profiling only needs stable page ids, not realistic placement.
  TieredMemory scratch(TieredMemory::Config::two_tier(/*fmem_pages=*/0, pages));
  AddressSpace space(scratch, /*w=*/0, footprint, kTierOnly(kFastestTier + 1),
                     /*sample_period=*/1);
  CountingObserver counter(pages);
  space.set_observer(&counter);

  const std::uint64_t iterations = body(space);
  if (iterations == 0) throw std::runtime_error("extract_profile: kernel reported zero work");

  PageProfile out;
  out.weight.resize(pages);
  std::uint64_t total = 0;
  for (std::uint64_t c : counter.counts()) total += c;
  if (total == 0) throw std::runtime_error("extract_profile: kernel touched no memory");
  for (std::uint64_t i = 0; i < pages; ++i)
    out.weight[i] = static_cast<double>(counter.counts()[i]) / static_cast<double>(total);
  out.accesses_per_iteration = static_cast<double>(total) / static_cast<double>(iterations);
  return out;
}

PageProfile PageProfile::stretched_to(std::uint64_t target_pages) const {
  if (target_pages == 0) throw std::invalid_argument("PageProfile: target_pages must be > 0");
  const std::uint64_t src = num_pages();
  if (target_pages < src)
    throw std::invalid_argument("PageProfile: stretched_to cannot shrink the footprint");
  PageProfile out;
  out.accesses_per_iteration = accesses_per_iteration;
  out.weight.resize(target_pages, 0.0);
  // Each source page's weight is split evenly over the target pages that map
  // to it, so the stretched distribution integrates to the same region mass.
  std::vector<double> split(src, 0.0);
  for (std::uint64_t j = 0; j < target_pages; ++j) split[j * src / target_pages] += 1.0;
  for (std::uint64_t j = 0; j < target_pages; ++j) {
    const std::uint64_t i = j * src / target_pages;
    out.weight[j] = weight[i] / split[i];
  }
  return out;
}

std::vector<double> PageProfile::best_placement_prefix() const {
  std::vector<double> sorted = weight;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<double> prefix(sorted.size() + 1, 0.0);
  for (std::size_t i = 0; i < sorted.size(); ++i) prefix[i + 1] = prefix[i] + sorted[i];
  if (!prefix.empty()) prefix.back() = std::min(prefix.back(), 1.0);
  return prefix;
}

}  // namespace mtat
