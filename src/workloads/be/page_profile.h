// Page-access profiles for best-effort workloads.
//
// A BE workload matters to tiered-memory management through two things only:
// the probability distribution of its memory accesses over its pages, and how
// many misses one unit of work costs. Both are *extracted* from a real run of
// the underlying kernel (BFS/SSSP/PageRank/XSBench) over a scratch simulated
// address space with exhaustive (period-1) sampling, then stretched onto the
// experiment-scale footprint. See DESIGN.md §1 for why this substitution
// preserves the behaviour the paper evaluates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "mem/address_space.h"

namespace mtat {

struct PageProfile {
  /// Per-virtual-page access probability; sums to 1 over the footprint.
  std::vector<double> weight;
  /// Modelled misses per unit of work (edge processed / lookup performed).
  double accesses_per_iteration = 0.0;

  std::uint64_t num_pages() const { return weight.size(); }

  /// Expand the footprint to `target_pages` >= num_pages() pages, preserving
  /// the shape: target page j inherits a proportional share of source page
  /// floor(j * src/target)'s weight. Weights still sum to 1. Shrinking is
  /// rejected (it would need aggregation semantics nothing here uses).
  PageProfile stretched_to(std::uint64_t target_pages) const;

  /// Descending-weight prefix sums: prefix[g] = total access probability
  /// captured by the g best-placed pages. prefix[0] = 0,
  /// prefix[num_pages()] = 1. This is the workload's ideal FMem hit curve,
  /// the basis of the offline profiling data PP-M consumes.
  std::vector<double> best_placement_prefix() const;
};

/// Runs `body` against a fresh scratch address space of `footprint` bytes
/// (single-tier scratch simulator, exhaustive sampling), counting accesses
/// per page. `body` returns the number of work units (iterations) performed.
/// The resulting profile's accesses_per_iteration is total/iterations.
PageProfile extract_profile(Bytes footprint, const std::function<std::uint64_t(AddressSpace&)>& body);

}  // namespace mtat
