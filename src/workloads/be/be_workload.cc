#include "workloads/be/be_workload.h"

#include <algorithm>
#include <stdexcept>

namespace mtat {

BEWorkload::BEWorkload(TieredMemory& mem, WorkloadId id, BEConfig cfg, AllocPolicy alloc,
                       AccessObserver* sampler, std::uint64_t seed)
    : mem_(&mem), id_(id), cfg_(std::move(cfg)), sampler_(sampler), rng_(seed) {
  if (cfg_.rss == 0) throw std::invalid_argument("BEWorkload: zero rss");
  if (cfg_.profile.num_pages() != bytes_to_pages(cfg_.rss))
    throw std::invalid_argument("BEWorkload: profile not stretched to rss");
  if (cfg_.cpu_ns_per_iter <= 0 || cfg_.cores <= 0 || cfg_.mlp <= 0)
    throw std::invalid_argument("BEWorkload: bad cpu/core/mlp config");
  space_ = std::make_unique<AddressSpace>(mem, id, cfg_.rss, alloc, cfg_.sample_period);
  alias_ = std::make_unique<AliasSampler>(cfg_.profile.weight);
  best_prefix_ = cfg_.profile.best_placement_prefix();

  // Pages are allocated in one contiguous id run (the allocator appends), so
  // PageId -> vpage is a subtraction; assert that assumption holds.
  const auto& pages = space_->pages();
  first_page_ = pages.front();
  for (std::size_t i = 0; i < pages.size(); ++i)
    if (pages[i] != first_page_ + i)
      throw std::logic_error("BEWorkload: non-contiguous page allocation");

  for (std::size_t i = 0; i < pages.size(); ++i)
    tier_weight_[mem.tier_of(pages[i])] += cfg_.profile.weight[i];

  mem.add_migration_listener(this);
}

void BEWorkload::on_migration(PageId p, TierId from, TierId to) {
  if (p < first_page_ || p >= first_page_ + space_->num_pages()) return;
  const double w = cfg_.profile.weight[p - first_page_];
  tier_weight_[from] -= w;
  tier_weight_[to] += w;
  ++migrations_pending_;
}

double BEWorkload::rate_for_weight(double fmem_weight) const {
  const double lat_f = static_cast<double>(mem_->latency(kFastestTier));
  const double lat_s = static_cast<double>(mem_->latency(kFastestTier + 1));
  const double expected_lat = fmem_weight * lat_f + (1.0 - fmem_weight) * lat_s;
  const double ns_per_iter =
      cfg_.cpu_ns_per_iter + cfg_.profile.accesses_per_iteration * expected_lat / cfg_.mlp;
  return static_cast<double>(cfg_.cores) * 1e9 / ns_per_iter;
}

double BEWorkload::current_rate() const {
  // Two tiers: the classic closed form over the fastest-tier weight (kept
  // verbatim so the 2-tier arithmetic is bit-identical to the pre-tier-vector
  // code). Deeper cascades weigh every tier's latency by the probability mass
  // resident there.
  if (mem_->tier_count() == 2) return rate_for_weight(tier_weight_[kFastestTier]);
  double expected_lat = 0.0;
  for (TierId t = 0; t < mem_->tier_count(); ++t)
    expected_lat += tier_weight_[t] * static_cast<double>(mem_->latency(t));
  const double ns_per_iter =
      cfg_.cpu_ns_per_iter + cfg_.profile.accesses_per_iteration * expected_lat / cfg_.mlp;
  return static_cast<double>(cfg_.cores) * 1e9 / ns_per_iter;
}

double BEWorkload::rate_at_pages(std::uint64_t fmem_pages) const {
  const std::uint64_t g = std::min<std::uint64_t>(fmem_pages, space_->num_pages());
  return rate_for_weight(best_prefix_[g]);
}

void BEWorkload::tick(Duration dt) {
  // Migration churn steals compute time from the tick (page copies and, for
  // fault-driven policies, the faults themselves run on the tenant's path).
  const Duration stall =
      std::min<Duration>(dt, migrations_pending_ * cfg_.migration_stall);
  migrations_pending_ = 0;
  const double iters = current_rate() * to_seconds(dt - stall);
  total_iterations_ += iters;
  interval_iterations_ += iters;
  if (sampler_ == nullptr) return;
  // Emit the PEBS-like sample stream: true accesses / sample period, with a
  // fractional carry so low-rate ticks still sample in the long run.
  sample_carry_ += iters * cfg_.profile.accesses_per_iteration /
                   static_cast<double>(cfg_.sample_period);
  const auto n = static_cast<std::uint64_t>(sample_carry_);
  sample_carry_ -= static_cast<double>(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t vpage = (*alias_)(rng_);
    sampler_->on_sampled_access(id_, first_page_ + vpage, AccessKind::kRead);
  }
}

double BEWorkload::take_interval_iterations() {
  const double out = interval_iterations_;
  interval_iterations_ = 0.0;
  return out;
}

}  // namespace mtat
