// XSBench-style Monte Carlo neutron-transport macroscopic cross-section
// lookup kernel over the simulated address space.
//
// Mirrors the real benchmark's unionized-energy-grid algorithm: a lookup
// draws a particle energy and a material, binary-searches the unionized grid
// (log2(n) touches concentrated on the search tree's top pages — a sharply
// skewed profile), then gathers the per-nuclide cross-section rows for every
// nuclide in the material (scattered reads across the large nuclide-data
// region). This hot-index/cold-data split is what makes XSBench behave
// differently from the graph workloads under FMem partitioning.
//
// Layout within the AddressSpace:
//   unionized grid   n_gridpoints x (8 B energy + n_per_row x 4 B indices)
//   nuclide data     n_nuclides x n_gridpoints_per_nuclide x 48 B rows
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/address_space.h"

namespace mtat {

class XSBenchKernel {
 public:
  struct Config {
    std::uint64_t n_gridpoints = 64 * 1024;  ///< unionized grid size
    int n_nuclides = 68;                     ///< 'large' XSBench has 355, 'small' 68
    std::uint64_t points_per_nuclide = 8 * 1024;
    int avg_nuclides_per_material = 10;  ///< gathers per lookup
    Bytes row_bytes = 48;                ///< 6 doubles: the XS values per gridpoint
  };

  static Bytes required_bytes(const Config& cfg);

  XSBenchKernel(AddressSpace& space, const Config& cfg, std::uint64_t seed);

  /// One macroscopic XS lookup; returns charged memory latency.
  Duration lookup();

  /// Run `n` lookups; returns summed latency and counts accesses.
  struct RunStats {
    Duration memory_latency = 0;
    std::uint64_t lookups = 0;
    std::uint64_t accesses = 0;
  };
  RunStats run(std::uint64_t n);

  const Config& config() const { return cfg_; }

 private:
  AddressSpace* space_;
  Config cfg_;
  Rng rng_;
  Bytes grid_base_;
  Bytes grid_row_bytes_;
  Bytes nuclide_base_;
  std::vector<double> grid_energies_;  // host-side sorted energies (real binary search)
  std::uint64_t accesses_ = 0;
};

}  // namespace mtat
