#include "workloads/xsbench/xsbench.h"

#include <algorithm>
#include <stdexcept>

namespace mtat {

Bytes XSBenchKernel::required_bytes(const Config& cfg) {
  const Bytes grid_row = 8 + static_cast<Bytes>(cfg.n_nuclides) * 4;
  return cfg.n_gridpoints * grid_row + static_cast<Bytes>(cfg.n_nuclides) *
                                           cfg.points_per_nuclide * cfg.row_bytes;
}

XSBenchKernel::XSBenchKernel(AddressSpace& space, const Config& cfg, std::uint64_t seed)
    : space_(&space), cfg_(cfg), rng_(seed) {
  if (cfg.n_gridpoints < 2) throw std::invalid_argument("XSBenchKernel: grid too small");
  if (space.size() < required_bytes(cfg))
    throw std::invalid_argument("XSBenchKernel: address space too small");
  grid_base_ = 0;
  grid_row_bytes_ = 8 + static_cast<Bytes>(cfg.n_nuclides) * 4;
  nuclide_base_ = cfg.n_gridpoints * grid_row_bytes_;
  // Real sorted energy grid so the binary search is genuine.
  grid_energies_.resize(cfg.n_gridpoints);
  for (auto& e : grid_energies_) e = rng_.next_double();
  std::sort(grid_energies_.begin(), grid_energies_.end());
}

Duration XSBenchKernel::lookup() {
  Duration lat = 0;
  // Binary search the unionized grid for the particle energy; each probe
  // reads one grid row's energy field.
  const double energy = rng_.next_double();
  std::uint64_t lo = 0, hi = grid_energies_.size() - 1;
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi) / 2;
    lat += space_->access(grid_base_ + mid * grid_row_bytes_);
    ++accesses_;
    if (grid_energies_[mid] < energy)
      lo = mid + 1;
    else
      hi = mid;
  }
  // Read the matched row's per-nuclide index list (one more touch).
  lat += space_->access(grid_base_ + lo * grid_row_bytes_ + 8);
  ++accesses_;
  // Gather XS rows for every nuclide in the sampled material.
  for (int i = 0; i < cfg_.avg_nuclides_per_material; ++i) {
    const auto nuc = rng_.next_below(static_cast<std::uint64_t>(cfg_.n_nuclides));
    // The unionized grid pins each nuclide's row near the energy's position;
    // emulate with a jittered index around the proportional location.
    const std::uint64_t base_idx =
        lo * cfg_.points_per_nuclide / grid_energies_.size();
    const std::uint64_t idx =
        std::min(cfg_.points_per_nuclide - 1, base_idx + rng_.next_below(16));
    const Bytes addr = nuclide_base_ +
                       (nuc * cfg_.points_per_nuclide + idx) * cfg_.row_bytes;
    lat += space_->access(addr);
    ++accesses_;
  }
  return lat;
}

XSBenchKernel::RunStats XSBenchKernel::run(std::uint64_t n) {
  RunStats out;
  const std::uint64_t before = accesses_;
  for (std::uint64_t i = 0; i < n; ++i) out.memory_latency += lookup();
  out.lookups = n;
  out.accesses = accesses_ - before;
  return out;
}

}  // namespace mtat
