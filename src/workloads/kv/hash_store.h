// Open-addressing hash key-value store over the simulated address space.
//
// This is the storage engine behind the Redis-like and Memcached-like LC
// workload models. It is a real hash table — keys are inserted with linear
// probing into a bucket array, so probe counts are the true probe counts —
// but the *data* bytes are not materialized: what the simulation needs from a
// request is (a) which simulated pages it touches and (b) how many memory
// misses it costs, both of which the layout provides.
//
// Layout within the workload's AddressSpace:
//   [0, n_buckets * kBucketBytes)            bucket array
//   [bucket_end, bucket_end + n * record)    record heap, record i at slot i
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/address_space.h"

namespace mtat {

class HashStore {
 public:
  static constexpr Bytes kBucketBytes = 16;  // key fingerprint + record pointer
  static constexpr std::uint64_t kEmpty = ~0ull;

  struct Config {
    std::uint64_t n_records = 0;
    Bytes record_size = 1024;
    double fill_factor = 0.7;          ///< bucket-array load factor
    std::uint64_t probe_misses = 1;    ///< misses charged per probed bucket
    std::uint64_t record_misses = 16;  ///< misses charged for one full record read
  };

  /// Space the store needs inside an AddressSpace, for sizing the allocation.
  static Bytes required_bytes(const Config& cfg);

  /// Builds the table and inserts keys 0..n_records-1. The space must be at
  /// least required_bytes() large.
  HashStore(AddressSpace& space, const Config& cfg);

  /// Point lookup: probes buckets, reads the record. Returns charged latency.
  /// Key must have been inserted (0 <= key < n_records).
  Duration get(std::uint64_t key);

  /// Update: same probe path, record written instead of read.
  Duration put(std::uint64_t key);

  const Config& config() const { return cfg_; }
  std::uint64_t n_buckets() const { return slots_.size(); }
  /// Mean probes over all inserted keys — exposed for tests of table health.
  double mean_probes() const;

 private:
  std::uint64_t bucket_of(std::uint64_t key) const;
  /// Walk the probe sequence for `key`, charging bucket accesses; returns the
  /// slot index holding the key.
  std::uint64_t probe(std::uint64_t key, Duration& lat);
  Duration touch_record(std::uint64_t key, AccessKind kind);

  AddressSpace* space_;
  Config cfg_;
  std::vector<std::uint64_t> slots_;  // host-side table contents (key per slot)
  Bytes records_base_;
};

}  // namespace mtat
