#include "workloads/kv/btree_store.h"

#include <stdexcept>

namespace mtat {
namespace {

/// Node counts per level for n leaf entries at the given fanout, root first.
std::vector<std::uint64_t> shape_for(std::uint64_t n) {
  std::vector<std::uint64_t> levels;  // built leaves-first, then reversed
  std::uint64_t nodes = (n + BTreeStore::kFanout - 1) / BTreeStore::kFanout;
  levels.push_back(nodes);
  while (nodes > 1) {
    nodes = (nodes + BTreeStore::kFanout - 1) / BTreeStore::kFanout;
    levels.push_back(nodes);
  }
  return {levels.rbegin(), levels.rend()};
}

}  // namespace

Bytes BTreeStore::required_bytes(const Config& cfg) {
  Bytes index = 0;
  for (std::uint64_t nodes : shape_for(cfg.n_records)) index += nodes * kNodeBytes;
  return index + cfg.n_records * cfg.record_size;
}

BTreeStore::BTreeStore(AddressSpace& space, const Config& cfg, Bytes base)
    : space_(&space), cfg_(cfg), base_(base) {
  if (cfg.n_records == 0) throw std::invalid_argument("BTreeStore: n_records must be > 0");
  if (base + required_bytes(cfg) > space.size())
    throw std::invalid_argument("BTreeStore: region does not fit in address space");
  level_nodes_ = shape_for(cfg.n_records);
  Bytes off = base;
  std::uint64_t span = kFanout;  // keys per node, computed leaves-up
  std::vector<std::uint64_t> divisors(level_nodes_.size());
  for (std::size_t i = level_nodes_.size(); i-- > 0;) {
    divisors[i] = span;
    span *= kFanout;
  }
  level_divisor_ = std::move(divisors);
  for (std::uint64_t nodes : level_nodes_) {
    level_base_.push_back(off);
    off += nodes * kNodeBytes;
  }
  records_base_ = off;
}

Duration BTreeStore::lookup(std::uint64_t key, AccessKind kind) {
  if (key >= cfg_.n_records) throw std::out_of_range("BTreeStore: key out of range");
  Duration lat = 0;
  // Walk root -> leaf; the node holding `key` at level i is key / divisor[i].
  for (std::size_t i = 0; i < level_nodes_.size(); ++i) {
    const std::uint64_t node = key / level_divisor_[i];
    const Bytes addr = level_base_[i] + node * kNodeBytes;
    lat += space_->access_page_n(addr / kPageSize, cfg_.node_misses, AccessKind::kRead);
  }
  // Record access, miss budget spread over the pages the record overlaps.
  const Bytes start = records_base_ + key * cfg_.record_size;
  const Bytes end = start + cfg_.record_size - 1;
  std::uint64_t remaining = cfg_.record_misses;
  for (std::uint64_t vp = start / kPageSize; vp <= end / kPageSize; ++vp) {
    const std::uint64_t pages_left = end / kPageSize - vp + 1;
    const std::uint64_t share = (remaining + pages_left - 1) / pages_left;
    lat += space_->access_page_n(vp, share, kind);
    remaining -= share;
  }
  return lat;
}

}  // namespace mtat
