#include "workloads/kv/hash_store.h"

#include <stdexcept>

namespace mtat {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer — good avalanche, deterministic across platforms.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint64_t buckets_for(const HashStore::Config& cfg) {
  return static_cast<std::uint64_t>(static_cast<double>(cfg.n_records) / cfg.fill_factor) + 1;
}

}  // namespace

Bytes HashStore::required_bytes(const Config& cfg) {
  return buckets_for(cfg) * kBucketBytes + cfg.n_records * cfg.record_size;
}

HashStore::HashStore(AddressSpace& space, const Config& cfg) : space_(&space), cfg_(cfg) {
  if (cfg.n_records == 0) throw std::invalid_argument("HashStore: n_records must be > 0");
  if (cfg.fill_factor <= 0.0 || cfg.fill_factor >= 1.0)
    throw std::invalid_argument("HashStore: fill_factor in (0,1)");
  if (space.size() < required_bytes(cfg))
    throw std::invalid_argument("HashStore: address space too small");
  slots_.assign(buckets_for(cfg), kEmpty);
  records_base_ = slots_.size() * kBucketBytes;
  // Real insertion with linear probing, so probe-sequence lengths are genuine.
  for (std::uint64_t key = 0; key < cfg.n_records; ++key) {
    std::uint64_t b = bucket_of(key);
    while (slots_[b] != kEmpty) b = (b + 1) % slots_.size();
    slots_[b] = key;
  }
}

std::uint64_t HashStore::bucket_of(std::uint64_t key) const {
  return mix64(key) % slots_.size();
}

std::uint64_t HashStore::probe(std::uint64_t key, Duration& lat) {
  std::uint64_t b = bucket_of(key);
  while (true) {
    lat += space_->access_page_n(b * kBucketBytes / kPageSize, cfg_.probe_misses);
    if (slots_[b] == key) return b;
    if (slots_[b] == kEmpty) throw std::logic_error("HashStore: key not present");
    b = (b + 1) % slots_.size();
  }
}

Duration HashStore::touch_record(std::uint64_t key, AccessKind kind) {
  // Spread the record's miss budget over the pages it overlaps, charging each
  // page its share — a 4 KiB value spans two pages when unaligned.
  const Bytes start = records_base_ + key * cfg_.record_size;
  const Bytes end = start + cfg_.record_size - 1;
  const std::uint64_t first = start / kPageSize;
  const std::uint64_t last = end / kPageSize;
  Duration lat = 0;
  std::uint64_t remaining = cfg_.record_misses;
  for (std::uint64_t vp = first; vp <= last; ++vp) {
    const std::uint64_t pages_left = last - vp + 1;
    const std::uint64_t share = (remaining + pages_left - 1) / pages_left;  // ceil
    lat += space_->access_page_n(vp, share, kind);
    remaining -= share;
  }
  return lat;
}

Duration HashStore::get(std::uint64_t key) {
  Duration lat = 0;
  probe(key, lat);
  lat += touch_record(key, AccessKind::kRead);
  return lat;
}

Duration HashStore::put(std::uint64_t key) {
  Duration lat = 0;
  probe(key, lat);
  lat += touch_record(key, AccessKind::kWrite);
  return lat;
}

double HashStore::mean_probes() const {
  std::uint64_t total = 0;
  for (std::uint64_t key = 0; key < cfg_.n_records; ++key) {
    std::uint64_t b = bucket_of(key);
    std::uint64_t probes = 1;
    while (slots_[b] != key) {
      b = (b + 1) % slots_.size();
      ++probes;
    }
    total += probes;
  }
  return static_cast<double>(total) / static_cast<double>(cfg_.n_records);
}

}  // namespace mtat
