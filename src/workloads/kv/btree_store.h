// Static B+-tree index plus record heap over the simulated address space.
//
// Storage engine behind the MongoDB-like document store and the Silo-like
// transactional tables. Keys are dense [0, n), so the tree is laid out as a
// perfectly balanced static B+-tree: node addresses are computable, and a
// lookup walks one node per level — exactly the memory-touch pattern of an
// index traversal, which is what the tiering simulation consumes.
//
// Layout within the AddressSpace, starting at `base`:
//   level 0 (root) nodes | level 1 nodes | ... | leaves | record heap
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "mem/address_space.h"

namespace mtat {

class BTreeStore {
 public:
  static constexpr Bytes kNodeBytes = 4096;  // one node per page, like InnoDB/WiredTiger
  static constexpr std::uint64_t kFanout = 256;

  struct Config {
    std::uint64_t n_records = 0;
    Bytes record_size = 1024;
    std::uint64_t node_misses = 2;     ///< misses per index node visited (search within node)
    std::uint64_t record_misses = 16;  ///< misses for one full record read/write
  };

  static Bytes required_bytes(const Config& cfg);

  /// `base` is the byte offset within `space` where this store's region
  /// starts, letting several stores (Silo's tables) share one address space.
  BTreeStore(AddressSpace& space, const Config& cfg, Bytes base = 0);

  /// Index-walk + record read. Returns charged latency.
  Duration get(std::uint64_t key) { return lookup(key, AccessKind::kRead); }
  /// Index-walk + record write.
  Duration put(std::uint64_t key) { return lookup(key, AccessKind::kWrite); }

  int levels() const { return static_cast<int>(level_nodes_.size()); }
  const Config& config() const { return cfg_; }
  Bytes index_bytes() const { return records_base_ - base_; }

 private:
  Duration lookup(std::uint64_t key, AccessKind kind);

  AddressSpace* space_;
  Config cfg_;
  Bytes base_;
  std::vector<std::uint64_t> level_nodes_;   // node count per level, root first
  std::vector<Bytes> level_base_;            // byte offset of each level
  std::vector<std::uint64_t> level_divisor_; // keys spanned by one node at that level
  Bytes records_base_;
};

}  // namespace mtat
