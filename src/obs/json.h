// Minimal JSON emission helpers shared by the obs exporters (metrics dumps,
// Chrome trace_event files, run manifests). Only what the exporters need:
// string escaping and a finite-number formatter — no DOM, no parsing.
#pragma once

#include <cmath>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace mtat::obs {

/// Escape `s` for embedding inside a JSON string literal (quotes excluded).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emit a double as valid JSON (JSON has no NaN/Inf; map them to null/huge).
inline void json_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "null";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

inline void json_string(std::ostream& os, std::string_view s) {
  os << '"' << json_escape(s) << '"';
}

}  // namespace mtat::obs
