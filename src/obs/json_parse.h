// Minimal strict JSON parser for the tooling that reads our own dumps back
// (BENCH_*.json trajectories in bench/perf_core and tools/perf_diff).
//
// obs/json.h is emit-only by design; this is its read-side counterpart, and
// it is deliberately small and strict rather than general:
//
//  * the full JSON value grammar (RFC 8259) minus \uXXXX escapes outside the
//    BMP-as-bytes passthrough below — our emitters only escape control
//    characters, quotes, and backslashes;
//  * objects preserve member order (vector of pairs, not a map), so a
//    re-emit round-trips deterministically — duplicate keys are an error;
//  * every malformed input throws JsonParseError with a line/column, never
//    returns a best-effort value. The callers are gates; a quiet partial
//    parse would let a truncated BENCH file pass for a clean one.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mtat::obs {

struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Members in document order; json_parse rejects duplicate keys.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse one JSON document; trailing non-whitespace is an error.
/// Throws JsonParseError with a "line L, column C" location on any problem.
JsonValue json_parse(std::string_view text);

/// json_parse over a file's contents; unreadable files throw JsonParseError
/// naming the path.
JsonValue json_parse_file(const std::string& path);

}  // namespace mtat::obs
