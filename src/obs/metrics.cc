#include "obs/metrics.h"

#include "obs/json.h"

namespace mtat::obs {

namespace {

template <typename Map, typename Metric = typename Map::mapped_type::element_type>
Metric& get_or_create(Map& map, const std::string& name) {
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(name, std::make_unique<Metric>()).first;
  return *it->second;
}

template <typename Map>
const typename Map::mapped_type::element_type* find_in(const Map& map,
                                                       const std::string& name) {
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return get_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return get_or_create(histograms_, name);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  return find_in(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  return find_in(histograms_, name);
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':';
    json_number(os, c->value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':';
    json_number(os, g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ":{\"count\":" << h->count() << ",\"mean\":";
    json_number(os, h->mean());
    os << ",\"min\":" << h->min() << ",\"p50\":" << h->percentile(50.0)
       << ",\"p90\":" << h->percentile(90.0) << ",\"p99\":" << h->percentile(99.0)
       << ",\"max\":" << h->max() << '}';
  }
  os << "}}";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ",value," << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    os << "gauge," << name << ",value," << g->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h->count() << '\n';
    os << "histogram," << name << ",mean," << h->mean() << '\n';
    os << "histogram," << name << ",min," << h->min() << '\n';
    os << "histogram," << name << ",p50," << h->percentile(50.0) << '\n';
    os << "histogram," << name << ",p90," << h->percentile(90.0) << '\n';
    os << "histogram," << name << ",p99," << h->percentile(99.0) << '\n';
    os << "histogram," << name << ",max," << h->max() << '\n';
  }
}

}  // namespace mtat::obs
