#include "obs/manifest.h"

#include <fstream>

#include "obs/json.h"

#if __has_include("obs/version_gen.h")
#include "obs/version_gen.h"
#else
#define MTAT_GIT_SHA "unknown"
#endif

namespace mtat::obs {

const char* build_git_sha() { return MTAT_GIT_SHA; }

void RunManifest::write_json(std::ostream& os) const {
  os << "{\"schema\":\"mtat.run_manifest/1\",\"tool\":";
  json_string(os, tool);
  os << ",\"git_sha\":";
  json_string(os, build_git_sha());
  os << ",\"scale\":";
  json_string(os, scale.empty() ? "custom" : scale);
  os << ",\"seed\":" << seed;
  os << ",\"train_epochs\":" << train_epochs;
  os << ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : config) {
    if (!first) os << ',';
    first = false;
    json_string(os, k);
    os << ':';
    json_string(os, v);
  }
  os << "}}";
}

bool RunManifest::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace mtat::obs
