// Per-run observability state: one MetricsRegistry plus one TraceRecorder.
//
// A RunContext is the unit of observability isolation. Every ColocationSim
// owns or borrows exactly one, and every component that records metrics or
// trace events (MigrationEngine, QueueSim, SacAgent, PP-M, PP-E) is wired to
// it explicitly via set_run_context() — there is no process-global recorder
// in any simulation code path, which is what makes independent sims safe to
// run on concurrent threads (experiments::ParallelRunner).
//
// Two trace modes:
//  * kGlobal (default): the context records trace events into the process-
//    wide recorder behind obs::trace(). This is the single-run mode used by
//    tools/mtat_sim and any bench binary running serially — the MTAT_TRACE
//    environment hook enables that recorder once and every sim in the
//    process shares its timeline (distinct tracks per sim).
//  * kPrivate: the context owns its own TraceRecorder. Parallel experiment
//    points each get a private-trace context so their clocks and tracks
//    cannot race; the runner merges the private rings into the global
//    recorder in deterministic spec order afterwards (distinct track ids —
//    see TraceRecorder::merge_from).
//
// This header is the one sanctioned construction site for contexts over the
// global recorder: code under src/sim, src/core, src/mem, src/rl and
// src/loadgen must not name the global accessor directly (enforced by a
// grep gate in tools/check.sh).
#pragma once

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mtat::faults {
class FaultInjector;
struct FaultPlan;
}  // namespace mtat::faults

namespace mtat::obs {

class RunContext {
 public:
  enum class TraceMode {
    kGlobal,   ///< record into the process-wide recorder (single-run tools)
    kPrivate,  ///< own a recorder (parallel experiment points)
  };

  /// Default: metrics registry of its own, trace events into the global
  /// recorder. kPrivate instead owns a default-disabled TraceRecorder —
  /// enable it (ParallelRunner mirrors the global recorder's state) to
  /// actually collect events.
  explicit RunContext(TraceMode mode = TraceMode::kGlobal);
  ~RunContext();  // out of line: FaultInjector is incomplete here

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  TraceRecorder& trace() { return *trace_; }
  const TraceRecorder& trace() const { return *trace_; }

  bool owns_trace() const { return owned_trace_ != nullptr; }

  /// Attach a fault injector executing `plan` to this context. Components
  /// wired to the context pick it up in their set_run_context(); call before
  /// constructing the sim. The constructor installs faults::default_plan()
  /// automatically when one is set (the MTAT_FAULTS path), so explicit
  /// installs are only needed for per-point plans (bench sweeps, tests).
  void install_faults(const faults::FaultPlan& plan);

  /// The attached injector, or nullptr — the common case, and the fast path
  /// every fault site checks first. Non-null also signals the degradation
  /// machinery (watchdog, plan abandonment) to arm itself.
  faults::FaultInjector* faults() const { return faults_.get(); }

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> owned_trace_;  // kPrivate only
  TraceRecorder* trace_;                        // owned or the global recorder
  std::unique_ptr<faults::FaultInjector> faults_;
};

/// The process-wide recorder (the one obs::trace() returns), exposed so the
/// experiment runner can mirror its enabled state into private contexts and
/// merge their rings back without naming the global accessor inside src/sim.
TraceRecorder& default_trace();

}  // namespace mtat::obs
