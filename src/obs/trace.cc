#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace mtat::obs {

TraceRecorder& trace() {
  // Ownership: THE process-global recorder — the single sanctioned piece of
  // ambient trace state (see the threading contract in trace.h). Everything
  // else threads a RunContext/TraceRecorder& through; the context-escape
  // lint rule polices new callers of this accessor.
  static TraceRecorder instance;  // mtat-lint: allow(shared-mutable)
  return instance;
}

void TraceRecorder::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (capacity != capacity_) {
    ring_.assign(capacity, TraceEvent{});
    capacity_ = capacity;
    written_ = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  written_ = 0;
}

void TraceRecorder::merge_from(const TraceRecorder& src, std::uint32_t track_offset) {
  if (capacity_ == 0) return;  // never enabled: nowhere to put the events
  for (TraceEvent e : src.snapshot()) {
    e.track += track_offset;
    push(e);
  }
  // Keep allocate_track() collision-free with the remapped range.
  next_track_ = std::max(next_track_, track_offset + src.next_track_);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  const std::uint64_t w = written_.load(std::memory_order_relaxed);
  const std::uint64_t first = w > capacity_ ? w - capacity_ : 0;
  for (std::uint64_t i = first; i < w; ++i) out.push_back(ring_[i % capacity_]);
  return out;
}

namespace {

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  json_string(os, e.name != nullptr ? e.name : "?");
  os << ",\"cat\":";
  json_string(os, e.cat != nullptr ? e.cat : "sim");
  os << ",\"ph\":\"" << e.phase << "\"";
  // trace_event timestamps are microseconds; sim time is nanoseconds.
  os << ",\"ts\":";
  json_number(os, static_cast<double>(e.ts) / 1e3);
  if (e.phase == 'X') {
    os << ",\"dur\":";
    json_number(os, static_cast<double>(e.dur) / 1e3);
  }
  if (e.phase == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
  os << ",\"pid\":1,\"tid\":" << e.track;
  if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
    os << ",\"args\":{";
    bool first = true;
    if (e.arg1_name != nullptr) {
      json_string(os, e.arg1_name);
      os << ':';
      json_number(os, e.arg1);
      first = false;
    }
    if (e.arg2_name != nullptr) {
      if (!first) os << ',';
      json_string(os, e.arg2_name);
      os << ':';
      json_number(os, e.arg2);
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  const std::uint64_t w = written_.load(std::memory_order_relaxed);
  const std::uint64_t first = w > capacity_ ? w - capacity_ : 0;
  for (std::uint64_t i = first; i < w; ++i) {
    if (i != first) os << ",\n";
    write_event(os, ring_[i % capacity_]);
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" << dropped()
     << "}}";
}

}  // namespace mtat::obs
