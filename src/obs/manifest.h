// Run manifests: the reproducibility sidecar for every experiment output.
//
// A bench CSV or metrics dump is only as good as the configuration that
// produced it. RunManifest captures what a reader needs to re-run the
// experiment — tool name, scale preset, seed, training epochs, the git SHA
// the binary was built from, and free-form config key/values — and writes it
// as a small JSON document next to the data (schema "mtat.run_manifest/1",
// documented in DESIGN.md "Observability").
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mtat::obs {

/// Git SHA recorded at CMake configure time ("unknown" outside a git
/// checkout). Stale by at most one configure — good enough provenance for
/// experiment sidecars.
const char* build_git_sha();

struct RunManifest {
  std::string tool;        ///< producing binary / experiment name
  std::string scale;       ///< MTAT_SCALE preset, or "custom" for CLI runs
  std::uint64_t seed = 0;
  int train_epochs = -1;   ///< -1 when not applicable (non-RL runs)
  /// Free-form configuration (policy, workload, sizes, pattern, ...). Order
  /// is preserved in the output.
  std::vector<std::pair<std::string, std::string>> config;

  void add(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }

  /// One JSON object, schema "mtat.run_manifest/1".
  void write_json(std::ostream& os) const;

  /// Write to `path` (+ trailing newline). Returns false on I/O failure
  /// instead of throwing — a missing sidecar must never kill an experiment.
  bool write_file(const std::string& path) const;
};

}  // namespace mtat::obs
