#include "obs/json_parse.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mtat::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream msg;
    msg << "JSON parse error at line " << line << ", column " << col << ": " << what;
    throw JsonParseError(msg.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("invalid literal (expected " + std::string(word) + ")");
    pos_ += word.size();
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        expect_word("true");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_word("false");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        expect_word("null");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (v.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    // Our emitters only produce \u00XX control-character escapes; reject
    // surrogate halves instead of silently emitting invalid UTF-8.
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape unsupported");
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("invalid number");
    if (text_[start] == '-' ? (int_digits > 1 && text_[start + 1] == '0')
                            : (int_digits > 1 && text_[start] == '0'))
      fail("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    // The token above is a validated JSON number grammar match, so strtod
    // consumes exactly it; errno catches over/underflow to inf/0 (accepted —
    // JSON places no range limit and the emit side clamps to ±1e308 anyway).
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonParseError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw JsonParseError("read error on " + path);
  try {
    return json_parse(buf.str());
  } catch (const JsonParseError& e) {
    throw JsonParseError(path + ": " + e.what());
  }
}

}  // namespace mtat::obs
