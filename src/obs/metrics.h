// Always-on metrics registry for the MTAT simulator.
//
// Every internal signal worth reporting — migration page counts, policy
// decision wall time, queue backlog, RL losses — is a named metric in a
// MetricsRegistry instead of a hand-threaded field on SimResult. Three metric
// kinds cover the simulator's needs:
//
//  * Counter   — monotonically increasing sum (pages moved, wall-us spent).
//                Double-valued so sub-integer quantities (microseconds)
//                accumulate without rounding.
//  * Gauge     — last-written value (contention factor, last RL reward).
//  * Histogram — log-bucketed distribution of unsigned samples, reusing the
//                HDR-style buckets of common/latency_histogram.h (~3%
//                relative error, O(1) record).
//
// Lookup by name is a map walk, so instrumented hot paths resolve their
// metric once (usually at construction) and keep the reference: references
// returned by counter()/gauge()/histogram() are stable for the registry's
// lifetime. The registry itself is cheap enough to leave always-on; tracing
// (obs/trace.h) is the part that is default-off.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "common/latency_histogram.h"

namespace mtat::obs {

class Counter {
 public:
  void inc(double n = 1.0) { v_ += n; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  /// Keep the running maximum instead of the last write (watermarks).
  void set_max(double v) { v_ = v > v_ ? v : v_; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

class Histogram {
 public:
  void record(std::uint64_t v) { h_.record(v); }
  void record_n(std::uint64_t v, std::uint64_t count) { h_.record_n(v, count); }
  std::uint64_t count() const { return h_.count(); }
  double mean() const { return h_.mean(); }
  std::uint64_t percentile(double pct) const { return h_.percentile(pct); }
  std::uint64_t min() const { return h_.min(); }
  std::uint64_t max() const { return h_.max(); }
  void reset() { h_.reset(); }

 private:
  LatencyHistogram h_;
};

/// Named metrics, one namespace per kind. Returned references stay valid for
/// the registry's lifetime (metrics are heap-allocated and never removed).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// nullptr when no metric of that kind has been registered under `name`.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Histograms dump count/mean/min/p50/p90/p99/max.
  void write_json(std::ostream& os) const;

  /// Flat CSV: kind,name,field,value — one row per scalar, several per
  /// histogram. Grep-friendly counterpart of the JSON dump.
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mtat::obs
