// Central name table for every metric and trace event the simulator emits.
//
// Metric and trace names used to be free-form string literals at their call
// sites, which meant a typo ("queue.arivals") silently created a fresh,
// never-read series. Every name now lives here exactly once; call sites refer
// to the constant, and `mtat_lint` (tools/lint) enforces both halves of the
// contract:
//
//  * a string literal passed to MetricsRegistry::counter()/gauge()/
//    histogram(), TraceRecorder::instant()/complete()/counter(), or WallSpan
//    is a lint error outside allowlisted files — call sites must use these
//    constants;
//  * the metric section below is cross-checked, name for name, against the
//    DESIGN.md §9 metric table (and the trace-event section against the §9
//    trace table), so code, docs, and JSON dumps cannot drift apart.
//
// The `mtat-lint: section=...` comments are machine-read by the linter; keep
// each constant inside the section it belongs to, and keep one constant per
// line. Unit suffixes follow the canonical spellings (_us, _ms, _ns, _bytes,
// _pages, _pct, _per_sec) — the linter rejects variants like _usec or
// _percent. How to add a metric: declare the constant here, add the row to
// the DESIGN.md §9 table, then use it at the call site.
#pragma once

#include <string_view>

namespace mtat::obs::names {

// mtat-lint: section=metric
inline constexpr const char* kMigrationPagesMoved = "migration.pages_moved";
inline constexpr const char* kMigrationPromotions = "migration.promotions";
inline constexpr const char* kMigrationDemotions = "migration.demotions";
inline constexpr const char* kMigrationExchanges = "migration.exchanges";
inline constexpr const char* kMigrationPagesPerTick = "migration.pages_per_tick";
inline constexpr const char* kMigrationLink0PagesMoved = "migration.link0_pages_moved";
inline constexpr const char* kMigrationLink1PagesMoved = "migration.link1_pages_moved";
inline constexpr const char* kMigrationLink2PagesMoved = "migration.link2_pages_moved";
inline constexpr const char* kPolicyWallUs = "policy.wall_us";
inline constexpr const char* kPolicyWallUsHist = "policy.wall_us_hist";
inline constexpr const char* kPpmDecideWallUs = "ppm.decide_wall_us";
inline constexpr const char* kPpmDecisions = "ppm.decisions";
inline constexpr const char* kPpmViolations = "ppm.violations";
inline constexpr const char* kPpmGuardTrips = "ppm.guard_trips";
inline constexpr const char* kPpmReward = "ppm.reward";
inline constexpr const char* kPpePlans = "ppe.plans";
inline constexpr const char* kPpePlanPages = "ppe.plan_pages";
inline constexpr const char* kRlUpdates = "rl.updates";
inline constexpr const char* kRlCriticLoss = "rl.critic_loss";
inline constexpr const char* kRlActorLoss = "rl.actor_loss";
inline constexpr const char* kRlAlpha = "rl.alpha";
inline constexpr const char* kQueueArrivals = "queue.arrivals";
inline constexpr const char* kQueueCompleted = "queue.completed";
inline constexpr const char* kQueueBacklogPeak = "queue.backlog_peak";
inline constexpr const char* kSimIntervals = "sim.intervals";
inline constexpr const char* kSimMeasuredIntervals = "sim.measured_intervals";
inline constexpr const char* kBwFmemFactor = "bw.fmem_factor";
inline constexpr const char* kBwSmemFactor = "bw.smem_factor";
inline constexpr const char* kLcFmemRatio = "lc.fmem_ratio";
inline constexpr const char* kLcFmemShare = "lc.fmem_share";
inline constexpr const char* kMtatLcQuotaPages = "mtat.lc_quota_pages";
inline constexpr const char* kDerivedMigrationBytesPerSec = "derived.migration_bytes_per_sec";
inline constexpr const char* kDerivedPolicyWallUsPerInterval =
    "derived.policy_wall_us_per_interval";
inline constexpr const char* kFaultSamplesDropped = "fault.samples_dropped";
inline constexpr const char* kFaultSamplesCorrupted = "fault.samples_corrupted";
inline constexpr const char* kFaultMigrationFailures = "fault.migration_failures";
inline constexpr const char* kFaultMigrationRollbacks = "fault.migration_rollbacks";
inline constexpr const char* kFaultRlActionsCorrupted = "fault.rl_actions_corrupted";
inline constexpr const char* kMigrationRetries = "migration.retries";
inline constexpr const char* kMigrationBackoffTicks = "migration.backoff_ticks";
inline constexpr const char* kPpmNonfiniteActions = "ppm.nonfinite_actions";
inline constexpr const char* kRlRejectedTransitions = "rl.rejected_transitions";
inline constexpr const char* kPpePlansAbandoned = "ppe.plans_abandoned";
inline constexpr const char* kMtatMode = "mtat.mode";
inline constexpr const char* kMtatModeTransitions = "mtat.mode_transitions";
inline constexpr const char* kClusterNodes = "cluster.nodes";
inline constexpr const char* kClusterTenants = "cluster.tenants";
inline constexpr const char* kClusterRounds = "cluster.rounds";
inline constexpr const char* kClusterPlacements = "cluster.placements";
inline constexpr const char* kClusterRebalancedTenants = "cluster.rebalanced_tenants";
inline constexpr const char* kClusterOfferedRps = "cluster.offered_rps";
inline constexpr const char* kClusterSloCompliancePct = "cluster.slo_compliance_pct";
inline constexpr const char* kClusterTailP99Ms = "cluster.tail_p99_ms";
inline constexpr const char* kClusterFmemUtilPct = "cluster.fmem_util_pct";
inline constexpr const char* kClusterNodeP99Ms = "cluster.node_p99_ms";
inline constexpr const char* kClusterNodeSloViolationPct = "cluster.node_slo_violation_pct";
inline constexpr const char* kClusterNodeFmemUtilPct = "cluster.node_fmem_util_pct";
inline constexpr const char* kClusterNodeOfferedRps = "cluster.node_offered_rps";
inline constexpr const char* kClusterNodeTenants = "cluster.node_tenants";
inline constexpr const char* kClusterEpochs = "cluster.epochs";
inline constexpr const char* kFaultNodeCrashes = "fault.node_crashes";
inline constexpr const char* kFaultNodeStragglers = "fault.node_stragglers";
inline constexpr const char* kFaultNodeBlackouts = "fault.node_blackouts";
inline constexpr const char* kClusterFailoverSuspectedNodes = "cluster.failover_suspected_nodes";
inline constexpr const char* kClusterFailoverEvacuations = "cluster.failover_evacuations";
inline constexpr const char* kClusterFailoverQueuedTenants = "cluster.failover_queued_tenants";
inline constexpr const char* kClusterFailoverRetries = "cluster.failover_retries";
inline constexpr const char* kClusterFailoverWarmRestarts = "cluster.failover_warm_restarts";
inline constexpr const char* kClusterFailoverColdRestarts = "cluster.failover_cold_restarts";
inline constexpr const char* kClusterFailoverPlacementMode = "cluster.failover_placement_mode";
inline constexpr const char* kPerfSimStepsPerSec = "perf.sim_steps_per_sec";
inline constexpr const char* kPerfSamplerIngestPerSec = "perf.sampler_ingest_per_sec";
inline constexpr const char* kPerfHotnessRecordAgePerSec = "perf.hotness_record_age_per_sec";
inline constexpr const char* kPerfHotnessPullPerSec = "perf.hotness_pull_per_sec";
inline constexpr const char* kPerfMigrationsPerSec = "perf.migrations_per_sec";
inline constexpr const char* kPerfSacInferencePerSec = "perf.sac_inference_per_sec";
inline constexpr const char* kPerfClusterQuarterStepsPerSec = "perf.cluster_quarter_steps_per_sec";
inline constexpr const char* kPerfClusterHalfStepsPerSec = "perf.cluster_half_steps_per_sec";
inline constexpr const char* kPerfClusterFullStepsPerSec = "perf.cluster_full_steps_per_sec";
// mtat-lint: section=trace-event
inline constexpr const char* kEvInterval = "interval";
inline constexpr const char* kEvMigration = "migration";
inline constexpr const char* kEvPolicyOnInterval = "policy.on_interval";
inline constexpr const char* kEvPpmDecide = "ppm.decide";
inline constexpr const char* kEvPpmDecision = "ppm.decision";
inline constexpr const char* kEvPpmGuardTrip = "ppm.guard_trip";
inline constexpr const char* kEvPpePlan = "ppe.plan";
inline constexpr const char* kEvPpePlanExec = "ppe.plan_exec";
inline constexpr const char* kEvRlUpdate = "rl.update";
inline constexpr const char* kEvQueueOverload = "queue.overload";
inline constexpr const char* kEvLcFmemShare = "lc_fmem_share";
inline constexpr const char* kEvLcP99Ms = "lc_p99_ms";
inline constexpr const char* kEvMigrationFault = "migration.fault";
inline constexpr const char* kEvMigrationBackoff = "migration.backoff";
inline constexpr const char* kEvMigrationRetry = "migration.retry";
inline constexpr const char* kEvPpePlanAbandon = "ppe.plan_abandon";
inline constexpr const char* kEvMtatModeChange = "mtat.mode_change";
inline constexpr const char* kEvClusterRound = "cluster.round";
inline constexpr const char* kEvClusterEpoch = "cluster.epoch";
inline constexpr const char* kEvClusterFailover = "cluster.failover";
inline constexpr const char* kEvNodeFault = "fault.node";
// mtat-lint: section=trace-category
inline constexpr const char* kCatSim = "sim";
inline constexpr const char* kCatMem = "mem";
inline constexpr const char* kCatPolicy = "policy";
inline constexpr const char* kCatRl = "rl";
inline constexpr const char* kCatQueue = "queue";
// mtat-lint: section=end

/// Every metric name above, for exhaustive sweeps (determinism regression,
/// exporter tests). Kept in declaration order.
inline constexpr const char* kAllMetricNames[] = {
    kMigrationPagesMoved, kMigrationPromotions, kMigrationDemotions, kMigrationExchanges,
    kMigrationPagesPerTick, kMigrationLink0PagesMoved, kMigrationLink1PagesMoved,
    kMigrationLink2PagesMoved, kPolicyWallUs, kPolicyWallUsHist, kPpmDecideWallUs,
    kPpmDecisions, kPpmViolations, kPpmGuardTrips, kPpmReward, kPpePlans, kPpePlanPages,
    kRlUpdates, kRlCriticLoss, kRlActorLoss, kRlAlpha, kQueueArrivals, kQueueCompleted,
    kQueueBacklogPeak, kSimIntervals, kSimMeasuredIntervals, kBwFmemFactor, kBwSmemFactor,
    kLcFmemRatio, kLcFmemShare, kMtatLcQuotaPages, kDerivedMigrationBytesPerSec,
    kDerivedPolicyWallUsPerInterval, kFaultSamplesDropped, kFaultSamplesCorrupted,
    kFaultMigrationFailures, kFaultMigrationRollbacks, kFaultRlActionsCorrupted,
    kMigrationRetries, kMigrationBackoffTicks, kPpmNonfiniteActions, kRlRejectedTransitions,
    kPpePlansAbandoned, kMtatMode, kMtatModeTransitions, kClusterNodes, kClusterTenants,
    kClusterRounds, kClusterPlacements, kClusterRebalancedTenants, kClusterOfferedRps,
    kClusterSloCompliancePct, kClusterTailP99Ms, kClusterFmemUtilPct, kClusterNodeP99Ms,
    kClusterNodeSloViolationPct, kClusterNodeFmemUtilPct, kClusterNodeOfferedRps,
    kClusterNodeTenants, kClusterEpochs, kFaultNodeCrashes, kFaultNodeStragglers,
    kFaultNodeBlackouts, kClusterFailoverSuspectedNodes, kClusterFailoverEvacuations,
    kClusterFailoverQueuedTenants, kClusterFailoverRetries, kClusterFailoverWarmRestarts,
    kClusterFailoverColdRestarts, kClusterFailoverPlacementMode, kPerfSimStepsPerSec,
    kPerfSamplerIngestPerSec, kPerfHotnessRecordAgePerSec, kPerfHotnessPullPerSec,
    kPerfMigrationsPerSec, kPerfSacInferencePerSec, kPerfClusterQuarterStepsPerSec,
    kPerfClusterHalfStepsPerSec, kPerfClusterFullStepsPerSec};

/// Wall-clock-domain metrics: the only registry entries allowed to differ
/// between two same-seed runs (they measure host compute time, not simulated
/// behaviour). The determinism regression test skips exactly these. The whole
/// perf.* family is wall-derived by construction — every one is an ops/s
/// throughput rated against host wall time by bench/perf_core.
inline constexpr bool is_wall_time_metric(std::string_view name) {
  return name.find("wall") != std::string_view::npos ||
         name.substr(0, 5) == "perf.";  // mtat-lint: allow(perf-name)
}

}  // namespace mtat::obs::names
