#include "obs/run_context.h"

namespace mtat::obs {

RunContext::RunContext(TraceMode mode) {
  if (mode == TraceMode::kPrivate) {
    owned_trace_ = std::make_unique<TraceRecorder>();
    trace_ = owned_trace_.get();
  } else {
    // Qualified: the unqualified name would find the trace() member.
    trace_ = &obs::trace();
  }
}

TraceRecorder& default_trace() { return trace(); }

}  // namespace mtat::obs
