#include "obs/run_context.h"

#include "faults/fault_injector.h"

namespace mtat::obs {

RunContext::RunContext(TraceMode mode) {
  if (mode == TraceMode::kPrivate) {
    owned_trace_ = std::make_unique<TraceRecorder>();
    trace_ = owned_trace_.get();
  } else {
    // Qualified: the unqualified name would find the trace() member.
    trace_ = &obs::trace();
  }
  if (const faults::FaultPlan* plan = faults::default_plan()) install_faults(*plan);
}

RunContext::~RunContext() = default;

void RunContext::install_faults(const faults::FaultPlan& plan) {
  faults_ = std::make_unique<faults::FaultInjector>(plan);
}

TraceRecorder& default_trace() { return trace(); }

}  // namespace mtat::obs
