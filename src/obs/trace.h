// Typed event tracing with Chrome trace_event export.
//
// A TraceRecorder collects fixed-size typed events (migration slices,
// partition decisions, interval rollovers, RL updates, queue overload) into a
// preallocated ring buffer and exports them as Chrome trace_event JSON, the
// format chrome://tracing and Perfetto (ui.perfetto.dev) open directly.
//
// Cost model: tracing is compiled in but DEFAULT-OFF. Every record call first
// checks an atomic enabled flag (relaxed load — one predictable branch when
// disabled), so instrumentation can stay in hot paths permanently. When the
// ring fills, the oldest events are overwritten (Chrome's ring mode): a long
// run keeps its most recent window and reports how many events were dropped.
//
// Timestamps are *simulated* time. The simulation owns a nanosecond clock and
// publishes it via set_now() each tick, so components can stamp events
// without threading a clock through every call. Wall-clock costs (PP-M
// decide, SAC updates) are recorded as spans *placed* at the sim time they
// occurred whose *duration* is the measured wall time — the trace timeline
// stays in sim time while span widths show real compute cost (documented in
// DESIGN.md "Observability").
//
// Event names and categories must be string literals (or otherwise outlive
// the recorder): events store the pointers, never copies.
//
// Threading: the *record* calls (instant/complete/counter) are safe to issue
// concurrently — the enabled flag and the write cursor are atomic, so each
// recorder claims a distinct ring slot. Two writers can still collide on one
// slot if they are more than `capacity` claims apart (ring-mode overwrite
// semantics, mangling at most that slot, never memory safety). Everything
// else — enable/disable/clear/set_now/set_track/snapshot/write_chrome_json —
// is a control or export operation and must run while no recorder is active
// (quiescent), which the simulator's tick loop guarantees.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace mtat::obs {

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'i';       ///< Chrome phase: 'X' complete, 'i' instant, 'C' counter
  SimTime ts = 0;         ///< sim time, ns
  Duration dur = 0;       ///< span length, ns ('X' only)
  std::uint32_t track = 0;  ///< rendered as Chrome tid (one track per sim)
  const char* arg1_name = nullptr;
  double arg1 = 0.0;
  const char* arg2_name = nullptr;
  double arg2 = 0.0;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Allocate the ring (if needed) and start recording. Re-enabling with a
  /// different capacity reallocates; re-enabling with the same keeps events.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drop all recorded events (capacity and enabled state unchanged).
  void clear();

  /// Publish the current simulated time; subsequent events without an
  /// explicit timestamp are stamped with it.
  void set_now(SimTime t) { now_ = t; }
  SimTime now() const { return now_; }

  /// One track (Chrome tid) per simulation instance keeps interleaved runs
  /// inside one bench binary visually separate.
  std::uint32_t allocate_track() { return next_track_++; }
  void set_track(std::uint32_t t) { track_ = t; }
  std::uint32_t track() const { return track_; }
  /// The next track allocate_track() would hand out — the offset a caller
  /// merging another recorder's events needs to keep track ids distinct.
  std::uint32_t next_track() const { return next_track_; }

  /// Append `src`'s surviving events (oldest first) with their track ids
  /// shifted by `track_offset`, and advance this recorder's track allocator
  /// past the remapped range. Control operation: both recorders must be
  /// quiescent. Used by experiments::ParallelRunner to fold per-context
  /// private rings back into the shared timeline in deterministic spec
  /// order. No-op when this recorder has never been enabled (no ring).
  void merge_from(const TraceRecorder& src, std::uint32_t track_offset);

  /// Point event at the current sim time.
  void instant(const char* name, const char* cat, const char* k1 = nullptr, double v1 = 0.0,
               const char* k2 = nullptr, double v2 = 0.0) {
    if (!enabled()) return;
    push(TraceEvent{name, cat, 'i', now_, 0, track_, k1, v1, k2, v2});
  }

  /// Complete span [ts, ts+dur] in sim time.
  void complete(const char* name, const char* cat, SimTime ts, Duration dur,
                const char* k1 = nullptr, double v1 = 0.0, const char* k2 = nullptr,
                double v2 = 0.0) {
    if (!enabled()) return;
    push(TraceEvent{name, cat, 'X', ts, dur, track_, k1, v1, k2, v2});
  }

  /// Chrome counter sample (rendered as a stacked chart named `name`).
  void counter(const char* name, const char* cat, const char* key, double value) {
    if (!enabled()) return;
    push(TraceEvent{name, cat, 'C', now_, 0, track_, key, value, nullptr, 0.0});
  }

  std::size_t size() const {
    const std::uint64_t w = written_.load(std::memory_order_relaxed);
    return w < capacity_ ? w : capacity_;
  }
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const {
    const std::uint64_t w = written_.load(std::memory_order_relaxed);
    return w > capacity_ ? w - capacity_ : 0;
  }

  /// Events in chronological (insertion) order, oldest surviving first.
  std::vector<TraceEvent> snapshot() const;

  /// {"traceEvents":[...],"displayTimeUnit":"ms",...} — openable in
  /// chrome://tracing and Perfetto. Timestamps are emitted in microseconds
  /// (the trace_event unit).
  void write_chrome_json(std::ostream& os) const;

 private:
  void push(const TraceEvent& e) {
    if (capacity_ == 0) return;
    // Claim a slot first, then fill it: concurrent recorders get distinct
    // slots (relaxed is enough — no recorder reads another's slot, and the
    // exporters only run quiescent).
    const std::uint64_t slot = written_.fetch_add(1, std::memory_order_relaxed);
    ring_[slot % capacity_] = e;
  }

  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::atomic<std::uint64_t> written_{0};
  SimTime now_ = 0;
  std::uint32_t track_ = 0;
  std::uint32_t next_track_ = 1;
};

/// The process-wide recorder. Components record into this instance so traces
/// need no plumbing: the simulation publishes its clock and track, bench
/// binaries enable it from the MTAT_TRACE environment hook, tools/mtat_sim
/// from --trace-out. Default-disabled; nothing allocates until enable().
TraceRecorder& trace();

/// RAII wall-clock span: measures the wall time between construction and
/// destruction, records it into optional always-on metrics (a Counter sum of
/// microseconds and/or a Histogram of microsecond samples), and — when a
/// recorder is supplied and enabled — emits a complete event placed at the
/// recorder's current sim time with the wall duration (see the header
/// comment on timestamp domains). A null recorder means metrics only: the
/// span never touches any global state, so it is safe on any thread.
class WallSpan {
 public:
  WallSpan(TraceRecorder* trace, const char* name, const char* cat,
           Counter* wall_us_sum = nullptr, Histogram* wall_us_hist = nullptr)
      : trace_(trace), name_(name), cat_(cat), sum_(wall_us_sum), hist_(wall_us_hist),
        t0_(std::chrono::steady_clock::now()) {}

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  ~WallSpan() {
    const double us = elapsed_us();
    if (sum_ != nullptr) sum_->inc(us);
    if (hist_ != nullptr) hist_->record(static_cast<std::uint64_t>(us));
    if (trace_ != nullptr)
      trace_->complete(name_, cat_, trace_->now(),
                       static_cast<Duration>(us * 1e3), "wall_us", us);
  }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  TraceRecorder* trace_;
  const char* name_;
  const char* cat_;
  Counter* sum_;
  Histogram* hist_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace mtat::obs
