// Bandwidth-budgeted page migration.
//
// The paper bounds reconfiguration by the tiered-memory subsystem's data
// movement capacity M (bytes/s): an action must complete within one policy
// interval t, and because promotion and demotion happen simultaneously the
// per-direction bound is M/2t (Eq. 1). MigrationEngine enforces exactly that:
// the simulation refills a page budget each interval from the configured
// bandwidth, and every policy (MTAT and baselines alike) spends from it when
// it moves pages, so no policy can cheat by migrating instantaneously.
//
// When a faults::FaultInjector is attached (via the RunContext), the engine
// is also where migration misbehaviour lands: injected aborts burn the copy
// bandwidth without moving the page (Nomad-style abort; exchanges roll the
// half-copied page back), scheduled collapses scale the refill, and a streak
// of aborts opens a capped exponential backoff window during which attempts
// fail fast — the retry after the window is counted and traced. See
// DESIGN.md §12.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "common/units.h"
#include "faults/fault_injector.h"
#include "mem/tiered_memory.h"
#include "obs/names.h"
#include "obs/run_context.h"

namespace mtat {

class MigrationEngine {
 public:
  struct Config {
    /// Total migration bandwidth (promotion + demotion combined), bytes/s.
    /// The paper measures PP-E consuming ~4 GB/s on a 25.6 GB/s channel.
    double bandwidth_bytes_per_sec = 4.0 * 1024 * 1024 * 1024;
  };

  MigrationEngine(TieredMemory& mem, const Config& cfg) : mem_(&mem), cfg_(cfg) {
    if (cfg.bandwidth_bytes_per_sec <= 0)
      throw std::invalid_argument("MigrationEngine: bandwidth must be positive");
  }

  /// Wire the engine to a run's observability: register migration counters
  /// (pages moved, promotions/demotions/exchanges) with `ctx`'s registry and
  /// record migration spans into its trace. nullptr detaches. The caller
  /// guarantees the context outlives the engine.
  void set_run_context(obs::RunContext* ctx) {
    if (ctx == nullptr) {
      moved_c_ = promoted_c_ = demoted_c_ = exchanged_c_ = nullptr;
      moved_per_tick_h_ = nullptr;
      trace_ = nullptr;
      faults_ = nullptr;
      failures_c_ = rollbacks_c_ = retries_c_ = backoff_ticks_c_ = nullptr;
      return;
    }
    obs::MetricsRegistry& reg = ctx->metrics();
    moved_c_ = &reg.counter(obs::names::kMigrationPagesMoved);
    promoted_c_ = &reg.counter(obs::names::kMigrationPromotions);
    demoted_c_ = &reg.counter(obs::names::kMigrationDemotions);
    exchanged_c_ = &reg.counter(obs::names::kMigrationExchanges);
    moved_per_tick_h_ = &reg.histogram(obs::names::kMigrationPagesPerTick);
    trace_ = &ctx->trace();
    faults_ = ctx->faults();
    if (faults_ != nullptr) {
      failures_c_ = &reg.counter(obs::names::kFaultMigrationFailures);
      rollbacks_c_ = &reg.counter(obs::names::kFaultMigrationRollbacks);
      retries_c_ = &reg.counter(obs::names::kMigrationRetries);
      backoff_ticks_c_ = &reg.counter(obs::names::kMigrationBackoffTicks);
    }
  }

  /// Refills the page budget for an interval of length `dt`. Fractional pages
  /// carry over so long-run throughput matches the configured bandwidth
  /// regardless of tick size.
  void begin_interval(Duration dt) {
    // Close out the previous slice for observability: a span in the trace
    // when any pages moved (the ring stays quiet across idle slices), and a
    // distribution sample either way.
    if (moved_per_tick_h_ != nullptr) moved_per_tick_h_->record(moved_this_interval_);
    if (trace_ != nullptr && moved_this_interval_ > 0 && trace_->enabled())
      trace_->complete(obs::names::kEvMigration, obs::names::kCatMem, last_begin_ts_,
                       last_dt_, "pages", static_cast<double>(moved_this_interval_));
    last_begin_ts_ = trace_ != nullptr ? trace_->now() : 0;
    last_dt_ = dt;
    // An injected bandwidth collapse scales this tick's refill; the carry
    // still accumulates the (reduced) fractional remainder, so throughput
    // integrates the fault exactly.
    const double refill_factor = faults_ != nullptr ? faults_->migration_bandwidth_factor() : 1.0;
    carry_ += refill_factor * cfg_.bandwidth_bytes_per_sec * to_seconds(dt) /
              static_cast<double>(kPageSize);
    const auto whole = static_cast<std::uint64_t>(carry_);
    budget_ = whole;
    carry_ -= static_cast<double>(whole);
    moved_this_interval_ = 0;
    if (backoff_remaining_ > 0) {
      --backoff_remaining_;
      backoff_ticks_c_->inc();
      if (backoff_remaining_ == 0) retry_pending_ = true;
    }
  }

  /// Pages still movable in the current interval.
  std::uint64_t budget_pages() const { return budget_; }

  /// Maximum pages movable per direction in an interval of length `t` —
  /// the bound on |α| in Eq. 1 (M / 2t, expressed in pages).
  std::uint64_t max_pages_per_direction(Duration t) const {
    return static_cast<std::uint64_t>(cfg_.bandwidth_bytes_per_sec * to_seconds(t) /
                                      (2.0 * static_cast<double>(kPageSize)));
  }

  /// Move one page to FMem. Fails (returns false) when out of budget, the
  /// page is already in FMem, or FMem is full.
  bool promote(PageId p) { return move(p, Tier::kFMem, 1); }

  /// Move one page to SMem. Symmetric to promote().
  bool demote(PageId p) { return move(p, Tier::kSMem, 1); }

  /// Atomically swap a SMem page into FMem and an FMem page out. Costs two
  /// pages of budget; succeeds even when both tiers are full.
  bool exchange(PageId promote_page, PageId demote_page) {
    if (budget_ < 2) return false;
    if (mem_->tier_of(promote_page) != Tier::kSMem || mem_->tier_of(demote_page) != Tier::kFMem)
      return false;
    if (faults_ != nullptr && !attempt_allowed(2, /*is_exchange=*/true)) return false;
    mem_->exchange(promote_page, demote_page);
    note_success();
    spend(2);
    if (exchanged_c_ != nullptr) exchanged_c_->inc();
    return true;
  }

  /// True while injected failures have the engine in a backoff window
  /// (attempts fail fast without consuming budget).
  bool in_backoff() const { return backoff_remaining_ > 0; }

  std::uint64_t pages_moved_this_interval() const { return moved_this_interval_; }
  std::uint64_t total_pages_moved() const { return total_moved_; }
  Bytes total_bytes_moved() const { return total_moved_ * kPageSize; }
  const Config& config() const { return cfg_; }

 private:
  bool move(PageId p, Tier to, std::uint64_t cost) {
    if (budget_ < cost) return false;
    if (faults_ != nullptr) {
      // Only otherwise-valid attempts can suffer an injected abort, so the
      // fault stream is not consumed (and budget not burned) by requests the
      // substrate would have rejected anyway.
      if (mem_->tier_of(p) == to || mem_->free_pages(to) == 0) return false;
      if (!attempt_allowed(cost, /*is_exchange=*/false)) return false;
    }
    if (!mem_->migrate(p, to)) return false;
    note_success();
    spend(cost);
    if (to == Tier::kFMem) {
      if (promoted_c_ != nullptr) promoted_c_->inc();
    } else {
      if (demoted_c_ != nullptr) demoted_c_->inc();
    }
    return true;
  }

  /// Fault gate for an otherwise-valid attempt (faults_ != nullptr, budget
  /// covers `cost`). Returns false when the attempt must abort: fail-fast
  /// during a backoff window, or an injected abort — which consumes the copy
  /// bandwidth (Nomad's wasted-copy cost) without moving anything, and for
  /// exchanges additionally represents rolling the half-copied page back.
  /// Four consecutive aborts open a capped exponential backoff window.
  bool attempt_allowed(std::uint64_t cost, bool is_exchange) {
    if (backoff_remaining_ > 0) return false;
    if (retry_pending_) {
      // First attempt after a backoff window drained.
      retry_pending_ = false;
      retries_c_->inc();
      if (trace_ != nullptr && trace_->enabled())
        trace_->instant(obs::names::kEvMigrationRetry, obs::names::kCatMem);
    }
    if (!faults_->fail_migration()) return true;
    budget_ -= cost;
    failures_c_->inc();
    if (is_exchange) rollbacks_c_->inc();
    if (trace_ != nullptr && trace_->enabled())
      trace_->instant(obs::names::kEvMigrationFault, obs::names::kCatMem, "pages",
                      static_cast<double>(cost), "rollback", is_exchange ? 1.0 : 0.0);
    if (++failure_streak_ >= kBackoffThreshold) {
      failure_streak_ = 0;
      backoff_remaining_ = std::min<std::uint64_t>(2ull << backoff_level_, kBackoffCapTicks);
      backoff_level_ = std::min(backoff_level_ + 1, 5);
      if (trace_ != nullptr && trace_->enabled())
        trace_->instant(obs::names::kEvMigrationBackoff, obs::names::kCatMem, "ticks",
                        static_cast<double>(backoff_remaining_));
    }
    return false;
  }

  void note_success() {
    failure_streak_ = 0;
    backoff_level_ = 0;
  }

  void spend(std::uint64_t pages) {
    budget_ -= pages;
    moved_this_interval_ += pages;
    total_moved_ += pages;
    if (moved_c_ != nullptr) moved_c_->inc(static_cast<double>(pages));
  }

  // Consecutive injected aborts before a backoff window opens, and the cap on
  // the exponentially growing window length (in engine intervals).
  static constexpr int kBackoffThreshold = 4;
  static constexpr std::uint64_t kBackoffCapTicks = 64;

  TieredMemory* mem_;
  Config cfg_;
  std::uint64_t budget_ = 0;
  double carry_ = 0.0;
  std::uint64_t moved_this_interval_ = 0;
  std::uint64_t total_moved_ = 0;
  SimTime last_begin_ts_ = 0;
  Duration last_dt_ = 0;
  int failure_streak_ = 0;
  int backoff_level_ = 0;
  std::uint64_t backoff_remaining_ = 0;
  bool retry_pending_ = false;
  obs::TraceRecorder* trace_ = nullptr;
  faults::FaultInjector* faults_ = nullptr;
  obs::Counter* moved_c_ = nullptr;
  obs::Counter* promoted_c_ = nullptr;
  obs::Counter* demoted_c_ = nullptr;
  obs::Counter* exchanged_c_ = nullptr;
  obs::Counter* failures_c_ = nullptr;       // set iff faults_ != nullptr
  obs::Counter* rollbacks_c_ = nullptr;      // set iff faults_ != nullptr
  obs::Counter* retries_c_ = nullptr;        // set iff faults_ != nullptr
  obs::Counter* backoff_ticks_c_ = nullptr;  // set iff faults_ != nullptr
  obs::Histogram* moved_per_tick_h_ = nullptr;
};

}  // namespace mtat
