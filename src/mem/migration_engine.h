// Bandwidth-budgeted page migration.
//
// The paper bounds reconfiguration by the tiered-memory subsystem's data
// movement capacity M (bytes/s): an action must complete within one policy
// interval t, and because promotion and demotion happen simultaneously the
// per-direction bound is M/2t (Eq. 1). MigrationEngine enforces exactly that:
// the simulation refills a page budget each interval from the configured
// bandwidth, and every policy (MTAT and baselines alike) spends from it when
// it moves pages, so no policy can cheat by migrating instantaneously.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "common/units.h"
#include "mem/tiered_memory.h"
#include "obs/names.h"
#include "obs/run_context.h"

namespace mtat {

class MigrationEngine {
 public:
  struct Config {
    /// Total migration bandwidth (promotion + demotion combined), bytes/s.
    /// The paper measures PP-E consuming ~4 GB/s on a 25.6 GB/s channel.
    double bandwidth_bytes_per_sec = 4.0 * 1024 * 1024 * 1024;
  };

  MigrationEngine(TieredMemory& mem, const Config& cfg) : mem_(&mem), cfg_(cfg) {
    if (cfg.bandwidth_bytes_per_sec <= 0)
      throw std::invalid_argument("MigrationEngine: bandwidth must be positive");
  }

  /// Wire the engine to a run's observability: register migration counters
  /// (pages moved, promotions/demotions/exchanges) with `ctx`'s registry and
  /// record migration spans into its trace. nullptr detaches. The caller
  /// guarantees the context outlives the engine.
  void set_run_context(obs::RunContext* ctx) {
    if (ctx == nullptr) {
      moved_c_ = promoted_c_ = demoted_c_ = exchanged_c_ = nullptr;
      moved_per_tick_h_ = nullptr;
      trace_ = nullptr;
      return;
    }
    obs::MetricsRegistry& reg = ctx->metrics();
    moved_c_ = &reg.counter(obs::names::kMigrationPagesMoved);
    promoted_c_ = &reg.counter(obs::names::kMigrationPromotions);
    demoted_c_ = &reg.counter(obs::names::kMigrationDemotions);
    exchanged_c_ = &reg.counter(obs::names::kMigrationExchanges);
    moved_per_tick_h_ = &reg.histogram(obs::names::kMigrationPagesPerTick);
    trace_ = &ctx->trace();
  }

  /// Refills the page budget for an interval of length `dt`. Fractional pages
  /// carry over so long-run throughput matches the configured bandwidth
  /// regardless of tick size.
  void begin_interval(Duration dt) {
    // Close out the previous slice for observability: a span in the trace
    // when any pages moved (the ring stays quiet across idle slices), and a
    // distribution sample either way.
    if (moved_per_tick_h_ != nullptr) moved_per_tick_h_->record(moved_this_interval_);
    if (trace_ != nullptr && moved_this_interval_ > 0 && trace_->enabled())
      trace_->complete(obs::names::kEvMigration, obs::names::kCatMem, last_begin_ts_,
                       last_dt_, "pages", static_cast<double>(moved_this_interval_));
    last_begin_ts_ = trace_ != nullptr ? trace_->now() : 0;
    last_dt_ = dt;
    carry_ += cfg_.bandwidth_bytes_per_sec * to_seconds(dt) / static_cast<double>(kPageSize);
    const auto whole = static_cast<std::uint64_t>(carry_);
    budget_ = whole;
    carry_ -= static_cast<double>(whole);
    moved_this_interval_ = 0;
  }

  /// Pages still movable in the current interval.
  std::uint64_t budget_pages() const { return budget_; }

  /// Maximum pages movable per direction in an interval of length `t` —
  /// the bound on |α| in Eq. 1 (M / 2t, expressed in pages).
  std::uint64_t max_pages_per_direction(Duration t) const {
    return static_cast<std::uint64_t>(cfg_.bandwidth_bytes_per_sec * to_seconds(t) /
                                      (2.0 * static_cast<double>(kPageSize)));
  }

  /// Move one page to FMem. Fails (returns false) when out of budget, the
  /// page is already in FMem, or FMem is full.
  bool promote(PageId p) { return move(p, Tier::kFMem, 1); }

  /// Move one page to SMem. Symmetric to promote().
  bool demote(PageId p) { return move(p, Tier::kSMem, 1); }

  /// Atomically swap a SMem page into FMem and an FMem page out. Costs two
  /// pages of budget; succeeds even when both tiers are full.
  bool exchange(PageId promote_page, PageId demote_page) {
    if (budget_ < 2) return false;
    if (mem_->tier_of(promote_page) != Tier::kSMem || mem_->tier_of(demote_page) != Tier::kFMem)
      return false;
    mem_->exchange(promote_page, demote_page);
    spend(2);
    if (exchanged_c_ != nullptr) exchanged_c_->inc();
    return true;
  }

  std::uint64_t pages_moved_this_interval() const { return moved_this_interval_; }
  std::uint64_t total_pages_moved() const { return total_moved_; }
  Bytes total_bytes_moved() const { return total_moved_ * kPageSize; }
  const Config& config() const { return cfg_; }

 private:
  bool move(PageId p, Tier to, std::uint64_t cost) {
    if (budget_ < cost) return false;
    if (!mem_->migrate(p, to)) return false;
    spend(cost);
    if (to == Tier::kFMem) {
      if (promoted_c_ != nullptr) promoted_c_->inc();
    } else {
      if (demoted_c_ != nullptr) demoted_c_->inc();
    }
    return true;
  }

  void spend(std::uint64_t pages) {
    budget_ -= pages;
    moved_this_interval_ += pages;
    total_moved_ += pages;
    if (moved_c_ != nullptr) moved_c_->inc(static_cast<double>(pages));
  }

  TieredMemory* mem_;
  Config cfg_;
  std::uint64_t budget_ = 0;
  double carry_ = 0.0;
  std::uint64_t moved_this_interval_ = 0;
  std::uint64_t total_moved_ = 0;
  SimTime last_begin_ts_ = 0;
  Duration last_dt_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* moved_c_ = nullptr;
  obs::Counter* promoted_c_ = nullptr;
  obs::Counter* demoted_c_ = nullptr;
  obs::Counter* exchanged_c_ = nullptr;
  obs::Histogram* moved_per_tick_h_ = nullptr;
};

}  // namespace mtat
