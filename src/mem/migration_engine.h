// Bandwidth-budgeted page migration.
//
// The paper bounds reconfiguration by the tiered-memory subsystem's data
// movement capacity M (bytes/s): an action must complete within one policy
// interval t, and because promotion and demotion happen simultaneously the
// per-direction bound is M/2t (Eq. 1). MigrationEngine enforces exactly that:
// the simulation refills a page budget each interval from the configured
// bandwidth, and every policy (MTAT and baselines alike) spends from it when
// it moves pages, so no policy can cheat by migrating instantaneously.
//
// N-tier accounting: each migration link k (connecting tiers k and k+1)
// carries its own budget and fractional carry, refilled from that link's
// bandwidth. A one-step promote/demote spends on the one link it crosses; an
// exchange between tiers a < b spends on every link in [a, b). At two tiers
// there is a single link and the arithmetic reduces exactly to the old
// scalar budget.
//
// When a faults::FaultInjector is attached (via the RunContext), the engine
// is also where migration misbehaviour lands: injected aborts burn the copy
// bandwidth without moving the page (Nomad-style abort; exchanges roll the
// half-copied page back), scheduled collapses scale the refill (optionally
// per-link), and a streak of aborts opens a capped exponential backoff
// window during which attempts fail fast — the retry after the window is
// counted and traced. See DESIGN.md §12.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "faults/fault_injector.h"
#include "mem/tiered_memory.h"
#include "obs/names.h"
#include "obs/run_context.h"

namespace mtat {

class MigrationEngine {
 public:
  struct Config {
    /// Total migration bandwidth (promotion + demotion combined), bytes/s.
    /// The paper measures PP-E consuming ~4 GB/s on a 25.6 GB/s channel.
    /// This is link 0's bandwidth (Eq. 1's M) and the default for any link
    /// not covered by `link_bandwidth_bytes_per_sec`.
    double bandwidth_bytes_per_sec = 4.0 * 1024 * 1024 * 1024;
    /// Optional per-link override, index k = link between tiers k and k+1
    /// (topology-driven runs fill this from the TierSpec vector). Links past
    /// the end of this vector fall back to bandwidth_bytes_per_sec.
    std::vector<double> link_bandwidth_bytes_per_sec;
  };

  MigrationEngine(TieredMemory& mem, const Config& cfg) : mem_(&mem), cfg_(cfg) {
    if (cfg.bandwidth_bytes_per_sec <= 0)
      throw std::invalid_argument("MigrationEngine: bandwidth must be positive");
    for (const double b : cfg.link_bandwidth_bytes_per_sec)
      if (b <= 0) throw std::invalid_argument("MigrationEngine: link bandwidth must be positive");
    const std::size_t links = mem.link_count();
    link_bw_.resize(links);
    for (std::size_t k = 0; k < links; ++k)
      link_bw_[k] = k < cfg.link_bandwidth_bytes_per_sec.size()
                        ? cfg.link_bandwidth_bytes_per_sec[k]
                        : cfg.bandwidth_bytes_per_sec;
    budget_.assign(links, 0);
    carry_.assign(links, 0.0);
  }

  /// Wire the engine to a run's observability: register migration counters
  /// (pages moved, promotions/demotions/exchanges) with `ctx`'s registry and
  /// record migration spans into its trace. nullptr detaches. The caller
  /// guarantees the context outlives the engine.
  void set_run_context(obs::RunContext* ctx) {
    if (ctx == nullptr) {
      moved_c_ = promoted_c_ = demoted_c_ = exchanged_c_ = nullptr;
      moved_per_tick_h_ = nullptr;
      trace_ = nullptr;
      faults_ = nullptr;
      failures_c_ = rollbacks_c_ = retries_c_ = backoff_ticks_c_ = nullptr;
      link_moved_c_.fill(nullptr);
      return;
    }
    obs::MetricsRegistry& reg = ctx->metrics();
    moved_c_ = &reg.counter(obs::names::kMigrationPagesMoved);
    promoted_c_ = &reg.counter(obs::names::kMigrationPromotions);
    demoted_c_ = &reg.counter(obs::names::kMigrationDemotions);
    exchanged_c_ = &reg.counter(obs::names::kMigrationExchanges);
    moved_per_tick_h_ = &reg.histogram(obs::names::kMigrationPagesPerTick);
    // Per-link traffic counters only exist beyond two tiers, so two-tier
    // metric dumps are unchanged (link 0 == migration.pages_moved there).
    if (budget_.size() > 1) {
      const char* const kLinkNames[kMaxTrackedLinks] = {
          obs::names::kMigrationLink0PagesMoved, obs::names::kMigrationLink1PagesMoved,
          obs::names::kMigrationLink2PagesMoved};
      for (std::size_t k = 0; k < kMaxTrackedLinks; ++k)
        link_moved_c_[k] = k < budget_.size() ? &reg.counter(kLinkNames[k]) : nullptr;
    }
    trace_ = &ctx->trace();
    faults_ = ctx->faults();
    if (faults_ != nullptr) {
      failures_c_ = &reg.counter(obs::names::kFaultMigrationFailures);
      rollbacks_c_ = &reg.counter(obs::names::kFaultMigrationRollbacks);
      retries_c_ = &reg.counter(obs::names::kMigrationRetries);
      backoff_ticks_c_ = &reg.counter(obs::names::kMigrationBackoffTicks);
    }
  }

  /// Refills every link's page budget for an interval of length `dt`.
  /// Fractional pages carry over so long-run throughput matches the
  /// configured bandwidth regardless of tick size.
  void begin_interval(Duration dt) {
    // Close out the previous slice for observability: a span in the trace
    // when any pages moved (the ring stays quiet across idle slices), and a
    // distribution sample either way.
    if (moved_per_tick_h_ != nullptr) moved_per_tick_h_->record(moved_this_interval_);
    if (trace_ != nullptr && moved_this_interval_ > 0 && trace_->enabled())
      trace_->complete(obs::names::kEvMigration, obs::names::kCatMem, last_begin_ts_,
                       last_dt_, "pages", static_cast<double>(moved_this_interval_));
    last_begin_ts_ = trace_ != nullptr ? trace_->now() : 0;
    last_dt_ = dt;
    // An injected bandwidth collapse scales this tick's refill (per link,
    // when the plan targets one); the carry still accumulates the (reduced)
    // fractional remainder, so throughput integrates the fault exactly.
    for (std::size_t k = 0; k < budget_.size(); ++k) {
      const double refill_factor =
          faults_ != nullptr ? faults_->migration_bandwidth_factor(static_cast<int>(k)) : 1.0;
      carry_[k] += refill_factor * link_bw_[k] * to_seconds(dt) /
                   static_cast<double>(kPageSize);
      const auto whole = static_cast<std::uint64_t>(carry_[k]);
      budget_[k] = whole;
      carry_[k] -= static_cast<double>(whole);
    }
    moved_this_interval_ = 0;
    if (backoff_remaining_ > 0) {
      --backoff_remaining_;
      backoff_ticks_c_->inc();
      if (backoff_remaining_ == 0) retry_pending_ = true;
    }
  }

  /// Pages still movable across link 0 (the fastest-tier boundary every
  /// promotion/demotion plan drains through) in the current interval.
  std::uint64_t budget_pages() const { return budget_[0]; }
  /// Pages still movable across link `k` this interval.
  std::uint64_t link_budget_pages(std::size_t k) const { return budget_[k]; }
  std::size_t link_count() const { return budget_.size(); }

  /// Maximum pages movable per direction in an interval of length `t` —
  /// the bound on |α| in Eq. 1 (M / 2t, expressed in pages; link 0's M).
  std::uint64_t max_pages_per_direction(Duration t) const {
    return static_cast<std::uint64_t>(cfg_.bandwidth_bytes_per_sec * to_seconds(t) /
                                      (2.0 * static_cast<double>(kPageSize)));
  }

  /// Move one page one tier toward the fastest (tier k -> k-1). Fails
  /// (returns false) when the page is already in tier 0, the link is out of
  /// budget, or the destination tier is full.
  bool promote(PageId p) {
    const TierId from = mem_->tier_of(p);
    if (from == kFastestTier) return false;
    return step(p, from, static_cast<TierId>(from - 1));
  }

  /// Move one page one tier toward the slowest (tier k -> k+1) — the unit
  /// step of a cascaded demotion. Symmetric to promote().
  bool demote(PageId p) {
    const TierId from = mem_->tier_of(p);
    if (from == mem_->slowest_tier()) return false;
    return step(p, from, static_cast<TierId>(from + 1));
  }

  /// Promote `p` link by link until it reaches the fastest tier, stopping at
  /// the first failed step. Returns true iff the page ended in tier 0.
  bool promote_to_fastest(PageId p) {
    while (mem_->tier_of(p) != kFastestTier)
      if (!promote(p)) return false;
    return true;
  }

  /// Atomically swap a slower page into a faster tier and a faster page out.
  /// The pages may be any number of links apart; the swap costs two pages of
  /// budget on every link between them, and succeeds even when both tiers
  /// are full.
  bool exchange(PageId promote_page, PageId demote_page) {
    const TierId tp = mem_->tier_of(promote_page);
    const TierId td = mem_->tier_of(demote_page);
    if (tp <= td) return false;
    for (std::size_t k = td; k < tp; ++k)
      if (budget_[k] < 2) return false;
    if (faults_ != nullptr && !attempt_allowed(td, tp, 2, /*is_exchange=*/true)) return false;
    mem_->exchange(promote_page, demote_page);
    note_success();
    spend(td, tp, 2);
    if (exchanged_c_ != nullptr) exchanged_c_->inc();
    return true;
  }

  /// True while injected failures have the engine in a backoff window
  /// (attempts fail fast without consuming budget).
  bool in_backoff() const { return backoff_remaining_ > 0; }

  std::uint64_t pages_moved_this_interval() const { return moved_this_interval_; }
  std::uint64_t total_pages_moved() const { return total_moved_; }
  Bytes total_bytes_moved() const { return total_moved_ * kPageSize; }
  const Config& config() const { return cfg_; }
  double link_bandwidth(std::size_t k) const { return link_bw_[k]; }

 private:
  /// One-link move of `p` from tier `from` to the adjacent tier `to`.
  bool step(PageId p, TierId from, TierId to) {
    const std::size_t link = std::min(from, to);
    if (budget_[link] < 1) return false;
    if (faults_ != nullptr) {
      // Only otherwise-valid attempts can suffer an injected abort, so the
      // fault stream is not consumed (and budget not burned) by requests the
      // substrate would have rejected anyway.
      if (mem_->free_pages(to) == 0) return false;
      if (!attempt_allowed(link, link + 1, 1, /*is_exchange=*/false)) return false;
    }
    if (!mem_->migrate(p, to)) return false;
    note_success();
    spend(link, link + 1, 1);
    if (to < from) {
      if (promoted_c_ != nullptr) promoted_c_->inc();
    } else {
      if (demoted_c_ != nullptr) demoted_c_->inc();
    }
    return true;
  }

  /// Fault gate for an otherwise-valid attempt (faults_ != nullptr, every
  /// involved link's budget covers `cost`). Returns false when the attempt
  /// must abort: fail-fast during a backoff window, or an injected abort —
  /// which consumes the copy bandwidth (Nomad's wasted-copy cost) on every
  /// link in [lo, hi) without moving anything, and for exchanges
  /// additionally represents rolling the half-copied page back. One fault
  /// draw per attempt, however many links it spans. Four consecutive aborts
  /// open a capped exponential backoff window.
  bool attempt_allowed(std::size_t lo, std::size_t hi, std::uint64_t cost, bool is_exchange) {
    if (backoff_remaining_ > 0) return false;
    if (retry_pending_) {
      // First attempt after a backoff window drained.
      retry_pending_ = false;
      retries_c_->inc();
      if (trace_ != nullptr && trace_->enabled())
        trace_->instant(obs::names::kEvMigrationRetry, obs::names::kCatMem);
    }
    if (!faults_->fail_migration()) return true;
    for (std::size_t k = lo; k < hi; ++k) budget_[k] -= cost;
    failures_c_->inc();
    if (is_exchange) rollbacks_c_->inc();
    if (trace_ != nullptr && trace_->enabled())
      trace_->instant(obs::names::kEvMigrationFault, obs::names::kCatMem, "pages",
                      static_cast<double>(cost), "rollback", is_exchange ? 1.0 : 0.0);
    if (++failure_streak_ >= kBackoffThreshold) {
      failure_streak_ = 0;
      backoff_remaining_ = std::min<std::uint64_t>(2ull << backoff_level_, kBackoffCapTicks);
      backoff_level_ = std::min(backoff_level_ + 1, 5);
      if (trace_ != nullptr && trace_->enabled())
        trace_->instant(obs::names::kEvMigrationBackoff, obs::names::kCatMem, "ticks",
                        static_cast<double>(backoff_remaining_));
    }
    return false;
  }

  void note_success() {
    failure_streak_ = 0;
    backoff_level_ = 0;
  }

  /// Spend `pages` of budget on every link in [lo, hi); traffic counters
  /// track per-link page copies, so a two-link exchange counts each copy on
  /// each link it crosses.
  void spend(std::size_t lo, std::size_t hi, std::uint64_t pages) {
    for (std::size_t k = lo; k < hi; ++k) {
      budget_[k] -= pages;
      moved_this_interval_ += pages;
      total_moved_ += pages;
      if (moved_c_ != nullptr) moved_c_->inc(static_cast<double>(pages));
      if (k < kMaxTrackedLinks && link_moved_c_[k] != nullptr)
        link_moved_c_[k]->inc(static_cast<double>(pages));
    }
  }

  // Consecutive injected aborts before a backoff window opens, and the cap on
  // the exponentially growing window length (in engine intervals).
  static constexpr int kBackoffThreshold = 4;
  static constexpr std::uint64_t kBackoffCapTicks = 64;
  // Links with a dedicated traffic counter in obs/names.h (enough for the
  // four-tier DRAM/CXL/NVM/remote sweeps; deeper topologies still budget
  // correctly, they just fold into migration.pages_moved).
  static constexpr std::size_t kMaxTrackedLinks = 3;

  TieredMemory* mem_;
  Config cfg_;
  std::vector<double> link_bw_;        ///< resolved per-link bandwidth, bytes/s
  std::vector<std::uint64_t> budget_;  ///< per-link pages left this interval
  std::vector<double> carry_;          ///< per-link fractional refill carry
  std::uint64_t moved_this_interval_ = 0;
  std::uint64_t total_moved_ = 0;
  SimTime last_begin_ts_ = 0;
  Duration last_dt_ = 0;
  int failure_streak_ = 0;
  int backoff_level_ = 0;
  std::uint64_t backoff_remaining_ = 0;
  bool retry_pending_ = false;
  obs::TraceRecorder* trace_ = nullptr;
  faults::FaultInjector* faults_ = nullptr;
  obs::Counter* moved_c_ = nullptr;
  obs::Counter* promoted_c_ = nullptr;
  obs::Counter* demoted_c_ = nullptr;
  obs::Counter* exchanged_c_ = nullptr;
  obs::Counter* failures_c_ = nullptr;       // set iff faults_ != nullptr
  obs::Counter* rollbacks_c_ = nullptr;      // set iff faults_ != nullptr
  obs::Counter* retries_c_ = nullptr;        // set iff faults_ != nullptr
  obs::Counter* backoff_ticks_c_ = nullptr;  // set iff faults_ != nullptr
  std::array<obs::Counter*, kMaxTrackedLinks> link_moved_c_{};  // set iff > 2 tiers
  obs::Histogram* moved_per_tick_h_ = nullptr;
};

}  // namespace mtat
