#include "mem/tiered_memory.h"

namespace mtat {

TieredMemory::TieredMemory(const Config& cfg) : cfg_(cfg) {
  if (cfg.fmem_pages == 0 && cfg.smem_pages == 0)
    throw std::invalid_argument("TieredMemory: zero total capacity");
  if (cfg.smem_latency < cfg.fmem_latency)
    throw std::invalid_argument("TieredMemory: SMem must not be faster than FMem");
  info_.reserve(cfg.fmem_pages + cfg.smem_pages);
}

void TieredMemory::ensure_workload(WorkloadId w) {
  if (w == kInvalidWorkload) throw std::invalid_argument("TieredMemory: invalid workload id");
  if (per_workload_.size() <= w) per_workload_.resize(static_cast<std::size_t>(w) + 1);
}

std::vector<PageId> TieredMemory::allocate(WorkloadId w, std::uint64_t n, AllocPolicy policy) {
  ensure_workload(w);
  std::uint64_t want_fmem = 0;
  switch (policy) {
    case AllocPolicy::kFMemFirst:
      want_fmem = std::min(n, free_pages(Tier::kFMem));
      break;
    case AllocPolicy::kFMemOnly:
      if (free_pages(Tier::kFMem) < n)
        throw std::runtime_error("TieredMemory: FMem-only allocation does not fit");
      want_fmem = n;
      break;
    case AllocPolicy::kSMemOnly:
      want_fmem = 0;
      break;
  }
  if (free_pages(Tier::kSMem) < n - want_fmem)
    throw std::runtime_error("TieredMemory: allocation exceeds total capacity");

  std::vector<PageId> out;
  out.reserve(n);
  auto& wl = per_workload_[w];
  for (std::uint64_t i = 0; i < n; ++i) {
    const Tier t = i < want_fmem ? Tier::kFMem : Tier::kSMem;
    const auto p = static_cast<PageId>(info_.size());
    info_.push_back(PageInfo{w, t});
    used_[static_cast<int>(t)]++;
    wl.pages.push_back(p);
    wl.in_tier[static_cast<int>(t)]++;
    out.push_back(p);
  }
  return out;
}

void TieredMemory::place(PageId p, Tier t) {
  PageInfo& pi = info_[p];
  const Tier from = pi.tier;
  used_[static_cast<int>(from)]--;
  used_[static_cast<int>(t)]++;
  auto& wl = per_workload_[pi.owner];
  wl.in_tier[static_cast<int>(from)]--;
  wl.in_tier[static_cast<int>(t)]++;
  pi.tier = t;
  migrations_++;
  for (MigrationListener* l : listeners_) l->on_migration(p, from, t);
}

bool TieredMemory::migrate(PageId p, Tier to) {
  check(p);
  if (info_[p].tier == to) return false;
  if (free_pages(to) == 0) return false;
  place(p, to);
  return true;
}

void TieredMemory::exchange(PageId a, PageId b) {
  check(a);
  check(b);
  const Tier ta = info_[a].tier;
  const Tier tb = info_[b].tier;
  if (ta == tb) throw std::logic_error("TieredMemory::exchange: pages share a tier");
  place(a, tb);
  place(b, ta);
}

}  // namespace mtat
