#include "mem/tiered_memory.h"

#include <algorithm>

namespace mtat {

TieredMemory::TieredMemory(const Config& cfg) : cfg_(cfg) {
  if (cfg.tiers.size() < 2)
    throw std::invalid_argument("TieredMemory: topology needs at least two tiers");
  if (cfg.tiers.size() > kMaxTiers)
    throw std::invalid_argument("TieredMemory: topology exceeds kMaxTiers tiers");
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < cfg.tiers.size(); ++t) {
    total += cfg.tiers[t].capacity_pages;
    if (t > 0 && cfg.tiers[t].latency < cfg.tiers[t - 1].latency)
      throw std::invalid_argument(
          "TieredMemory: tier latencies must be nondecreasing (tier 0 is fastest)");
  }
  if (total == 0) throw std::invalid_argument("TieredMemory: zero total capacity");
  used_.assign(cfg.tiers.size(), 0);
  contention_.assign(cfg.tiers.size(), 1.0);
  info_.reserve(total);
}

void TieredMemory::ensure_workload(WorkloadId w) {
  if (w == kInvalidWorkload) throw std::invalid_argument("TieredMemory: invalid workload id");
  if (per_workload_.size() <= w) per_workload_.resize(static_cast<std::size_t>(w) + 1);
}

std::vector<PageId> TieredMemory::allocate(WorkloadId w, std::uint64_t n, AllocPolicy policy) {
  ensure_workload(w);
  // Per-tier takes, in tier order: kFastestFirst fills each tier before
  // spilling one slower (at two tiers, exactly the old FMem-first split);
  // kTierOnly pins the whole request.
  std::array<std::uint64_t, kMaxTiers> take{};
  if (policy.kind == AllocPolicy::Kind::kTierOnly) {
    const TierId t = check_tier(policy.tier);
    if (free_pages(t) < n)
      throw std::runtime_error("TieredMemory: single-tier allocation does not fit");
    take[t] = n;
  } else {
    std::uint64_t remaining = n;
    for (TierId t = 0; t < tier_count() && remaining > 0; ++t) {
      take[t] = std::min(remaining, free_pages(t));
      remaining -= take[t];
    }
    if (remaining > 0)
      throw std::runtime_error("TieredMemory: allocation exceeds total capacity");
  }

  std::vector<PageId> out;
  out.reserve(n);
  auto& wl = per_workload_[w];
  for (TierId t = 0; t < tier_count(); ++t) {
    for (std::uint64_t i = 0; i < take[t]; ++i) {
      const auto p = static_cast<PageId>(info_.size());
      info_.push_back(PageInfo{w, t});
      used_[t]++;
      wl.pages.push_back(p);
      wl.in_tier[t]++;
      out.push_back(p);
    }
  }
  return out;
}

void TieredMemory::place(PageId p, TierId t) {
  PageInfo& pi = info_[p];
  const TierId from = pi.tier;
  used_[from]--;
  used_[t]++;
  auto& wl = per_workload_[pi.owner];
  wl.in_tier[from]--;
  wl.in_tier[t]++;
  pi.tier = t;
  migrations_++;
  for (MigrationListener* l : listeners_) l->on_migration(p, from, t);
}

bool TieredMemory::migrate(PageId p, TierId to) {
  check(p);
  check_tier(to);
  if (info_[p].tier == to) return false;
  if (free_pages(to) == 0) return false;
  place(p, to);
  return true;
}

void TieredMemory::exchange(PageId a, PageId b) {
  check(a);
  check(b);
  const TierId ta = info_[a].tier;
  const TierId tb = info_[b].tier;
  if (ta == tb) throw std::logic_error("TieredMemory::exchange: pages share a tier");
  place(a, tb);
  place(b, ta);
}

}  // namespace mtat
