// The tiered-memory substrate: an N-tier page-frame simulator.
//
// This stands in for the paper's physical testbed — 32 GiB local DRAM (FMem,
// ~73 ns) plus 256 GiB NUMA-remote DRAM emulating CXL memory (SMem, ~202 ns)
// — generalized to an ordered vector of tiers (tier 0 = fastest) so the
// ROADMAP's DRAM/CXL/NVM/remote scenarios run on the same substrate. It
// tracks, for every simulated page frame: the owning workload and the tier
// it currently resides in, and exposes the placement primitives every policy
// in the reproduction (MTAT's PP-E, MEMTIS-like, TPP-like, static pins) is
// built on: allocate, migrate, and exchange.
//
// Deliberately NOT here: access counting (see telemetry/), bandwidth budgets
// for migrations (see MigrationEngine), and any notion of hotness. This class
// only knows where pages are; policies decide where they should be.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace mtat {

/// One tier of the topology, in fastest-to-slowest order. `link_bandwidth`
/// describes migration link k — the channel between this tier k and the next
/// slower tier k+1 — so the last tier's value is unused. The defaults are the
/// paper's testbed numbers (FMem latency for tier 0 is set explicitly by
/// Config::two_tier; migration bandwidth ~4 GB/s, §5.5).
struct TierSpec {
  std::string name;                   ///< informational label (e.g. "dram", "cxl")
  std::uint64_t capacity_pages = 0;   ///< tier capacity, in pages
  Duration latency = 0;               ///< uncontended per-access latency, ns
  double link_bandwidth_bytes_per_sec = 4.0 * 1024 * 1024 * 1024;
};

/// Observer of page placement changes (migrate/exchange). Implementations
/// register with TieredMemory::add_migration_listener and are invoked after
/// every placement change; they must outlive any further migrations.
///
/// This used to be a std::function<void(PageId, TierId, TierId)>: hotness
/// telemetry keeps its cached per-page tier field in sync through this hook,
/// so every migration paid a type-erased call per listener. A plain virtual
/// interface is one indirect call, and gives listeners a stable identity.
class MigrationListener {
 public:
  virtual ~MigrationListener() = default;
  virtual void on_migration(PageId p, TierId from, TierId to) = 0;
};

/// Where freshly allocated pages should land.
struct AllocPolicy {
  enum class Kind : std::uint8_t {
    kFastestFirst,  ///< fill tier 0, spill to 1, 2, ... (Linux default)
    kTierOnly,      ///< place everything in `tier`; fail if it cannot hold the request
  };
  Kind kind = Kind::kFastestFirst;
  TierId tier = kFastestTier;  ///< target tier for kTierOnly
};

/// Fill the fastest tier first, spilling one tier slower at a time.
inline constexpr AllocPolicy kFastestFirst{AllocPolicy::Kind::kFastestFirst, kFastestTier};
/// Pin the whole request to tier `t` (kTierOnly(1) is the old SMem-only pin).
constexpr AllocPolicy kTierOnly(TierId t) { return {AllocPolicy::Kind::kTierOnly, t}; }

class TieredMemory {
 public:
  struct Config {
    /// Ordered topology, fastest first. At least two tiers, at most
    /// kMaxTiers; latencies must be nondecreasing.
    std::vector<TierSpec> tiers;

    /// The classic two-tier testbed: FMem/SMem capacities in pages, with the
    /// paper's latencies by default.
    static Config two_tier(std::uint64_t fmem_pages, std::uint64_t smem_pages,
                           Duration fmem_latency = 73, Duration smem_latency = 202) {
      Config c;
      c.tiers.resize(2);
      c.tiers[0].name = "fmem";
      c.tiers[0].capacity_pages = fmem_pages;
      c.tiers[0].latency = fmem_latency;
      c.tiers[1].name = "smem";
      c.tiers[1].capacity_pages = smem_pages;
      c.tiers[1].latency = smem_latency;
      return c;
    }
  };

  explicit TieredMemory(const Config& cfg);

  // --- Allocation -----------------------------------------------------------

  /// Allocates `n` pages for workload `w` under the given placement policy.
  /// Returns the new page ids. Throws std::runtime_error if total capacity
  /// (or the target tier's capacity, for kTierOnly) is insufficient.
  std::vector<PageId> allocate(WorkloadId w, std::uint64_t n, AllocPolicy policy);

  // --- Queries ---------------------------------------------------------------

  TierId tier_of(PageId p) const { return info_[check(p)].tier; }
  WorkloadId owner_of(PageId p) const { return info_[check(p)].owner; }

  std::size_t tier_count() const { return cfg_.tiers.size(); }
  TierId slowest_tier() const { return static_cast<TierId>(cfg_.tiers.size() - 1); }
  /// Migration links: link k connects tiers k and k+1.
  std::size_t link_count() const { return cfg_.tiers.size() - 1; }
  const TierSpec& tier_spec(TierId t) const { return cfg_.tiers[t]; }

  /// Per-access latency of the given tier, including any contention factor
  /// currently applied (see set_contention_factor).
  Duration latency(TierId t) const {
    return static_cast<Duration>(static_cast<double>(cfg_.tiers[t].latency) * contention_[t]);
  }

  /// Uncontended latency of a tier (the configured constant).
  Duration base_latency(TierId t) const { return cfg_.tiers[t].latency; }

  /// Bandwidth-contention multiplier on a tier's latency (>= 1). Set by the
  /// simulation's bandwidth model each tick when tier demand approaches the
  /// tier's sustainable rate; 1.0 means uncontended. Supports the §7
  /// bandwidth-aware policy extension.
  void set_contention_factor(TierId t, double factor) {
    if (factor < 1.0) throw std::invalid_argument("TieredMemory: contention factor < 1");
    contention_[check_tier(t)] = factor;
  }
  double contention_factor(TierId t) const { return contention_[t]; }
  /// Latency of an access to page `p` given its current placement.
  Duration access_latency(PageId p) const { return latency(tier_of(p)); }

  std::uint64_t capacity(TierId t) const { return cfg_.tiers[t].capacity_pages; }
  std::uint64_t used(TierId t) const { return used_[t]; }
  std::uint64_t free_pages(TierId t) const { return capacity(t) - used(t); }

  /// Number of pages workload `w` currently has resident in tier `t`.
  std::uint64_t workload_pages(WorkloadId w, TierId t) const {
    return per_workload_[w].in_tier[t];
  }
  /// Total pages allocated to workload `w` (its simulated RSS).
  std::uint64_t workload_total(WorkloadId w) const {
    const auto& in_tier = per_workload_[w].in_tier;
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < cfg_.tiers.size(); ++t) total += in_tier[t];
    return total;
  }
  /// Fraction of workload `w`'s pages resident in the fastest tier — the
  /// paper's "FMem Usage Ratio" state component and the Figure 2/5 residency
  /// series (FMem is tier 0 in any topology).
  double fmem_usage_ratio(WorkloadId w) const {
    const std::uint64_t total = workload_total(w);
    return total == 0 ? 0.0
                      : static_cast<double>(workload_pages(w, kFastestTier)) /
                            static_cast<double>(total);
  }

  /// All pages owned by workload `w`, in allocation order.
  const std::vector<PageId>& pages_of(WorkloadId w) const { return per_workload_[w].pages; }

  std::uint64_t page_count() const { return info_.size(); }
  std::uint16_t workload_count() const { return static_cast<std::uint16_t>(per_workload_.size()); }
  const Config& config() const { return cfg_; }

  // --- Placement primitives ---------------------------------------------------

  /// Moves page `p` to tier `to`. Returns false (and does nothing) when the
  /// destination tier is full or the page is already there. Costs one page of
  /// migration traffic per link crossed (accounted by the caller's
  /// MigrationEngine).
  bool migrate(PageId p, TierId to);

  /// Swaps the tiers of two pages currently in *different* tiers — the
  /// "memory tier exchange" of §3.1, which makes progress even when both
  /// tiers are full. The tiers need not be adjacent. Throws std::logic_error
  /// if the pages share a tier.
  void exchange(PageId a, PageId b);

  // --- Cumulative stats --------------------------------------------------------

  std::uint64_t total_migrations() const { return migrations_; }
  Bytes bytes_migrated() const { return migrations_ * kPageSize; }

  /// Registers `l` to observe every subsequent placement change. The
  /// listener is borrowed, not owned: it must stay alive for as long as
  /// pages can still migrate (telemetry/ and workload models register
  /// themselves for their own lifetime).
  void add_migration_listener(MigrationListener* l) { listeners_.push_back(l); }

 private:
  struct PageInfo {
    WorkloadId owner = kInvalidWorkload;
    TierId tier = Tier::kSMem;
  };
  struct WorkloadPages {
    std::vector<PageId> pages;
    std::array<std::uint64_t, kMaxTiers> in_tier{};
  };

  PageId check(PageId p) const {
    if (p >= info_.size()) throw std::out_of_range("TieredMemory: bad page id");
    return p;
  }
  TierId check_tier(TierId t) const {
    if (t >= cfg_.tiers.size()) throw std::out_of_range("TieredMemory: bad tier id");
    return t;
  }

  void place(PageId p, TierId t);  // internal move without full-destination check
  void ensure_workload(WorkloadId w);

  Config cfg_;
  std::vector<PageInfo> info_;
  std::vector<WorkloadPages> per_workload_;
  std::vector<MigrationListener*> listeners_;
  std::vector<std::uint64_t> used_;
  std::vector<double> contention_;
  std::uint64_t migrations_ = 0;
};

}  // namespace mtat
