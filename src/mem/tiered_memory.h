// The tiered-memory substrate: a two-tier (FMem/SMem) page-frame simulator.
//
// This stands in for the paper's physical testbed — 32 GiB local DRAM (FMem,
// ~73 ns) plus 256 GiB NUMA-remote DRAM emulating CXL memory (SMem, ~202 ns).
// It tracks, for every simulated page frame: the owning workload and the tier
// it currently resides in, and exposes the placement primitives every policy
// in the reproduction (MTAT's PP-E, MEMTIS-like, TPP-like, static pins) is
// built on: allocate, migrate, and exchange.
//
// Deliberately NOT here: access counting (see telemetry/), bandwidth budgets
// for migrations (see MigrationEngine), and any notion of hotness. This class
// only knows where pages are; policies decide where they should be.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace mtat {

/// Observer of page placement changes (migrate/exchange). Implementations
/// register with TieredMemory::add_migration_listener and are invoked after
/// every placement change; they must outlive any further migrations.
///
/// This used to be a std::function<void(PageId, Tier, Tier)>: hotness
/// telemetry keeps its cached per-page tier bit in sync through this hook,
/// so every migration paid a type-erased call per listener. A plain virtual
/// interface is one indirect call, and gives listeners a stable identity.
class MigrationListener {
 public:
  virtual ~MigrationListener() = default;
  virtual void on_migration(PageId p, Tier from, Tier to) = 0;
};

/// Where freshly allocated pages should land.
enum class AllocPolicy : std::uint8_t {
  kFMemFirst,  ///< fill FMem until exhausted, then spill to SMem (Linux default)
  kFMemOnly,   ///< fail if FMem cannot hold the request
  kSMemOnly,   ///< place everything in SMem (used by SMEM_ALL pinning)
};

class TieredMemory {
 public:
  struct Config {
    std::uint64_t fmem_pages = 0;  ///< capacity of the fast tier, in pages
    std::uint64_t smem_pages = 0;  ///< capacity of the slow tier, in pages
    Duration fmem_latency = 73;    ///< per-access latency of FMem, ns
    Duration smem_latency = 202;   ///< per-access latency of SMem, ns
  };

  explicit TieredMemory(const Config& cfg);

  // --- Allocation -----------------------------------------------------------

  /// Allocates `n` pages for workload `w` under the given placement policy.
  /// Returns the new page ids. Throws std::runtime_error if total capacity
  /// (or FMem capacity, for kFMemOnly) is insufficient.
  std::vector<PageId> allocate(WorkloadId w, std::uint64_t n, AllocPolicy policy);

  // --- Queries ---------------------------------------------------------------

  Tier tier_of(PageId p) const { return info_[check(p)].tier; }
  WorkloadId owner_of(PageId p) const { return info_[check(p)].owner; }

  /// Per-access latency of the given tier, including any contention factor
  /// currently applied (see set_contention_factor).
  Duration latency(Tier t) const {
    const Duration base = t == Tier::kFMem ? cfg_.fmem_latency : cfg_.smem_latency;
    return static_cast<Duration>(static_cast<double>(base) *
                                 contention_[static_cast<int>(t)]);
  }

  /// Uncontended latency of a tier (the configured constant).
  Duration base_latency(Tier t) const {
    return t == Tier::kFMem ? cfg_.fmem_latency : cfg_.smem_latency;
  }

  /// Bandwidth-contention multiplier on a tier's latency (>= 1). Set by the
  /// simulation's bandwidth model each tick when tier demand approaches the
  /// tier's sustainable rate; 1.0 means uncontended. Supports the §7
  /// bandwidth-aware policy extension.
  void set_contention_factor(Tier t, double factor) {
    if (factor < 1.0) throw std::invalid_argument("TieredMemory: contention factor < 1");
    contention_[static_cast<int>(t)] = factor;
  }
  double contention_factor(Tier t) const { return contention_[static_cast<int>(t)]; }
  /// Latency of an access to page `p` given its current placement.
  Duration access_latency(PageId p) const { return latency(tier_of(p)); }

  std::uint64_t capacity(Tier t) const {
    return t == Tier::kFMem ? cfg_.fmem_pages : cfg_.smem_pages;
  }
  std::uint64_t used(Tier t) const { return used_[static_cast<int>(t)]; }
  std::uint64_t free_pages(Tier t) const { return capacity(t) - used(t); }

  /// Number of pages workload `w` currently has resident in tier `t`.
  std::uint64_t workload_pages(WorkloadId w, Tier t) const {
    return per_workload_[w].in_tier[static_cast<int>(t)];
  }
  /// Total pages allocated to workload `w` (its simulated RSS).
  std::uint64_t workload_total(WorkloadId w) const {
    return per_workload_[w].in_tier[0] + per_workload_[w].in_tier[1];
  }
  /// Fraction of workload `w`'s pages resident in FMem — the paper's
  /// "FMem Usage Ratio" state component and the Figure 2/5 residency series.
  double fmem_usage_ratio(WorkloadId w) const {
    const std::uint64_t total = workload_total(w);
    return total == 0 ? 0.0
                      : static_cast<double>(workload_pages(w, Tier::kFMem)) /
                            static_cast<double>(total);
  }

  /// All pages owned by workload `w`, in allocation order.
  const std::vector<PageId>& pages_of(WorkloadId w) const { return per_workload_[w].pages; }

  std::uint64_t page_count() const { return info_.size(); }
  std::uint16_t workload_count() const { return static_cast<std::uint16_t>(per_workload_.size()); }
  const Config& config() const { return cfg_; }

  // --- Placement primitives ---------------------------------------------------

  /// Moves page `p` to tier `to`. Returns false (and does nothing) when the
  /// destination tier is full or the page is already there. Costs one page of
  /// migration traffic (accounted by the caller's MigrationEngine).
  bool migrate(PageId p, Tier to);

  /// Swaps the tiers of two pages currently in *different* tiers — the
  /// "memory tier exchange" of §3.1, which makes progress even when both
  /// tiers are full. Throws std::logic_error if the pages share a tier.
  void exchange(PageId a, PageId b);

  // --- Cumulative stats --------------------------------------------------------

  std::uint64_t total_migrations() const { return migrations_; }
  Bytes bytes_migrated() const { return migrations_ * kPageSize; }

  /// Registers `l` to observe every subsequent placement change. The
  /// listener is borrowed, not owned: it must stay alive for as long as
  /// pages can still migrate (telemetry/ and workload models register
  /// themselves for their own lifetime).
  void add_migration_listener(MigrationListener* l) { listeners_.push_back(l); }

 private:
  struct PageInfo {
    WorkloadId owner = kInvalidWorkload;
    Tier tier = Tier::kSMem;
  };
  struct WorkloadPages {
    std::vector<PageId> pages;
    std::uint64_t in_tier[2] = {0, 0};
  };

  PageId check(PageId p) const {
    if (p >= info_.size()) throw std::out_of_range("TieredMemory: bad page id");
    return p;
  }

  void place(PageId p, Tier t);    // internal move without full-destination check
  void ensure_workload(WorkloadId w);

  Config cfg_;
  std::vector<PageInfo> info_;
  std::vector<WorkloadPages> per_workload_;
  std::vector<MigrationListener*> listeners_;
  std::uint64_t used_[2] = {0, 0};
  double contention_[2] = {1.0, 1.0};
  std::uint64_t migrations_ = 0;
};

}  // namespace mtat
