// MTAT_TOPOLOGY-style tier-topology specs.
//
// A topology string describes an ordered tier vector, fastest first:
//
//   dram:8G:73;cxl:64G:202;nvm:256G:450
//
// Each `;`-separated entry is `name:capacity:latency[:link_bandwidth]`:
// capacity in bytes with an optional binary suffix (K/M/G/T), latency in
// nanoseconds, and an optional bandwidth (bytes/s, same suffixes) for the
// migration link to the next slower tier — defaulting to the paper's
// ~4 GB/s. Parsing follows the PR 2 discipline: every number goes through
// common/parse.h, and anything malformed is rejected with a specific error
// message rather than silently coerced (callers decide whether to warn and
// fall back, like bench::Env knobs, or fail hard, like mtat_sim flags).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mem/tiered_memory.h"

namespace mtat {

/// Parse a topology spec into an ordered TierSpec vector (capacities
/// converted to pages). Returns nullopt on any malformed entry; when `error`
/// is non-null it receives a one-line description of what was wrong. The
/// result satisfies TieredMemory's constructor invariants (2..kMaxTiers
/// tiers, nondecreasing latencies, nonzero capacity, positive bandwidth).
std::optional<std::vector<TierSpec>> parse_topology(const std::string& spec,
                                                    std::string* error = nullptr);

/// Render a tier vector back into the spec syntax (for banners and CSVs).
std::string topology_to_string(const std::vector<TierSpec>& tiers);

}  // namespace mtat
