// Per-workload virtual address space over the tiered-memory substrate.
//
// Workload engines (the KV stores, graph kernels, XSBench) address their data
// as byte offsets in [0, size). AddressSpace maps those offsets to simulated
// page frames, charges the tier-dependent latency for each modelled memory
// access, and forwards a PEBS-like 1-in-N sample of accesses to an observer
// (the telemetry module). Workload models call access() once per modelled
// LLC miss — the unit the paper's PEBS events count — not once per load.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "mem/tiered_memory.h"

namespace mtat {

/// Receives sampled page accesses. Implemented by telemetry::AccessSampler.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void on_sampled_access(WorkloadId w, PageId p, AccessKind kind) = 0;
};

class AddressSpace {
 public:
  /// Allocates ceil(size / page) pages for `w` under `policy`. sample_period
  /// of N reports every Nth access to the observer (N=1 reports all), which
  /// emulates PEBS' sampled — not exhaustive — view of the access stream.
  AddressSpace(TieredMemory& mem, WorkloadId w, Bytes size, AllocPolicy policy,
               std::uint64_t sample_period = 1)
      : mem_(&mem),
        workload_(w),
        size_(size),
        sample_period_(sample_period == 0 ? 1 : sample_period) {
    if (size == 0) throw std::invalid_argument("AddressSpace: zero size");
    pages_ = mem.allocate(w, bytes_to_pages(size), policy);
  }

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// One modelled memory access (LLC miss) at byte offset `vaddr`.
  /// Returns the charged latency.
  Duration access(Bytes vaddr, AccessKind kind = AccessKind::kRead) {
    return access_page(vaddr / kPageSize, kind);
  }

  /// One modelled access to virtual page `vpage`.
  Duration access_page(std::uint64_t vpage, AccessKind kind = AccessKind::kRead) {
    return access_page_n(vpage, 1, kind);
  }

  /// `n` modelled misses landing on virtual page `vpage` (e.g. a record read
  /// spanning n cache-line misses within one page). Charges n× the tier
  /// latency and emits the same number of telemetry samples a stream of n
  /// individual calls would, in O(1).
  Duration access_page_n(std::uint64_t vpage, std::uint64_t n, AccessKind kind = AccessKind::kRead) {
    const PageId p = page_at_index(vpage);
    const std::uint64_t before = accesses_ / sample_period_;
    accesses_ += n;
    const std::uint64_t samples = accesses_ / sample_period_ - before;
    if (observer_ != nullptr)
      for (std::uint64_t i = 0; i < samples; ++i) observer_->on_sampled_access(workload_, p, kind);
    return mem_->access_latency(p) * n;
  }

  /// Touch every page overlapping [vaddr, vaddr+len); returns summed latency.
  /// Used for record reads that span pages (e.g. 4 KiB memcached values).
  Duration access_range(Bytes vaddr, Bytes len, AccessKind kind = AccessKind::kRead) {
    Duration total = 0;
    const std::uint64_t first = vaddr / kPageSize;
    const std::uint64_t last = (vaddr + (len == 0 ? 0 : len - 1)) / kPageSize;
    for (std::uint64_t vp = first; vp <= last; ++vp) total += access_page(vp, kind);
    return total;
  }

  PageId page_at(Bytes vaddr) const { return page_at_index(vaddr / kPageSize); }
  PageId page_at_index(std::uint64_t vpage) const {
    if (vpage >= pages_.size()) throw std::out_of_range("AddressSpace: address beyond size");
    return pages_[vpage];
  }

  void set_observer(AccessObserver* obs) { observer_ = obs; }

  WorkloadId workload() const { return workload_; }
  Bytes size() const { return size_; }
  std::uint64_t num_pages() const { return pages_.size(); }
  std::uint64_t total_accesses() const { return accesses_; }
  const std::vector<PageId>& pages() const { return pages_; }
  TieredMemory& memory() const { return *mem_; }

 private:
  TieredMemory* mem_;
  WorkloadId workload_;
  Bytes size_;
  std::uint64_t sample_period_;
  std::vector<PageId> pages_;
  AccessObserver* observer_ = nullptr;
  std::uint64_t accesses_ = 0;
};

}  // namespace mtat
