#include "mem/topology.h"

#include <cctype>
#include <cstdio>
#include <limits>

#include "common/parse.h"
#include "common/units.h"

namespace mtat {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

/// `8G`, `512M`, `73728` -> bytes. Binary suffixes K/M/G/T (case-insensitive).
std::optional<std::uint64_t> parse_bytes_suffixed(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t mult = 1;
  std::string digits = s;
  switch (std::toupper(static_cast<unsigned char>(s.back()))) {
    case 'K': mult = 1ull << 10; break;
    case 'M': mult = 1ull << 20; break;
    case 'G': mult = 1ull << 30; break;
    case 'T': mult = 1ull << 40; break;
    default: mult = 0; break;
  }
  if (mult != 0) digits.pop_back();
  else mult = 1;
  const auto v = parse_u64(digits);
  if (!v) return std::nullopt;
  if (mult > 1 && *v > std::numeric_limits<std::uint64_t>::max() / mult) return std::nullopt;
  return *v * mult;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_entry(const std::string& entry, std::size_t index, TierSpec& out,
                 std::string* error) {
  const std::vector<std::string> fields = split(entry, ':');
  if (fields.size() < 3 || fields.size() > 4)
    return fail(error, "tier " + std::to_string(index) + " \"" + entry +
                           "\": expected name:capacity:latency[:link_bandwidth]");
  if (fields[0].empty())
    return fail(error, "tier " + std::to_string(index) + ": empty name");
  out.name = fields[0];
  const auto capacity = parse_bytes_suffixed(fields[1]);
  if (!capacity || *capacity == 0)
    return fail(error, "tier " + std::to_string(index) + " (" + out.name +
                           "): bad capacity \"" + fields[1] +
                           "\" (expected bytes with optional K/M/G/T suffix, > 0)");
  out.capacity_pages = bytes_to_pages(*capacity);
  const auto latency = parse_u64(fields[2]);
  if (!latency || *latency == 0)
    return fail(error, "tier " + std::to_string(index) + " (" + out.name +
                           "): bad latency \"" + fields[2] + "\" (expected ns, > 0)");
  out.latency = static_cast<Duration>(*latency);
  if (fields.size() == 4) {
    const auto bw = parse_bytes_suffixed(fields[3]);
    if (!bw || *bw == 0)
      return fail(error, "tier " + std::to_string(index) + " (" + out.name +
                             "): bad link bandwidth \"" + fields[3] +
                             "\" (expected bytes/s with optional K/M/G/T suffix, > 0)");
    out.link_bandwidth_bytes_per_sec = static_cast<double>(*bw);
  }
  return true;
}

}  // namespace

std::optional<std::vector<TierSpec>> parse_topology(const std::string& spec,
                                                    std::string* error) {
  std::vector<TierSpec> tiers;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) {
      fail(error, "empty tier entry (stray ';'?)");
      return std::nullopt;
    }
    TierSpec t;
    if (!parse_entry(entry, tiers.size(), t, error)) return std::nullopt;
    tiers.push_back(t);
  }
  if (tiers.size() < 2) {
    fail(error, "topology needs at least two tiers (fastest first)");
    return std::nullopt;
  }
  if (tiers.size() > kMaxTiers) {
    fail(error,
         "topology exceeds the kMaxTiers = " + std::to_string(kMaxTiers) + " tier limit");
    return std::nullopt;
  }
  for (std::size_t t = 1; t < tiers.size(); ++t) {
    if (tiers[t].latency < tiers[t - 1].latency) {
      fail(error, "tier " + std::to_string(t) + " (" + tiers[t].name +
                      ") is faster than tier " + std::to_string(t - 1) + " (" +
                      tiers[t - 1].name + "); list tiers fastest first");
      return std::nullopt;
    }
  }
  return tiers;
}

std::string topology_to_string(const std::vector<TierSpec>& tiers) {
  std::string out;
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s%s:%lluM:%llu", t == 0 ? "" : ";",
                  tiers[t].name.empty() ? "tier" : tiers[t].name.c_str(),
                  (unsigned long long)(tiers[t].capacity_pages * kPageSize >> 20),
                  (unsigned long long)tiers[t].latency);
    out += buf;
  }
  return out;
}

}  // namespace mtat
