// Bring-your-own-workload: record a tenant's access trace, rebuild it as a
// profile-driven BE tenant, and verify the replica presents the same picture
// to the tiering stack as the original.
//
// The same flow works for external traces: convert any (page, r/w) sample
// stream — e.g. a PEBS capture of a production application — into the trace
// format (workloads/trace/trace_io.h) and it becomes a first-class tenant.
//
//   ./trace_replay
#include <cstdio>

#include "common/rng.h"
#include "workloads/be/be_workload.h"
#include "workloads/kv/hash_store.h"
#include "workloads/trace/trace_io.h"

using namespace mtat;

int main() {
  const std::string path = "/tmp/mtat_example.trace";

  // --- 1. Record: run a real KV workload and capture its access stream. ----
  std::uint64_t footprint = 0;
  {
    const TieredMemory::Config mc = TieredMemory::Config::two_tier(1, 1 << 17);
    TieredMemory mem(mc);
    HashStore::Config hc;
    hc.n_records = 20'000;
    AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(kFastestTier + 1),
                       /*sample_period=*/4);
    TraceRecorder recorder(space);
    space.set_observer(&recorder);
    HashStore store(space, hc);
    Rng rng(2024);
    // Skewed requests so the trace has structure worth preserving.
    ScrambledZipfianGenerator zipf(hc.n_records, 0.99);
    for (int i = 0; i < 30'000; ++i) store.get(zipf(rng));
    footprint = space.num_pages();
    const auto samples = recorder.take();
    write_trace(path, footprint, samples);
    std::printf("recorded %zu sampled accesses over %llu pages -> %s\n", samples.size(),
                (unsigned long long)footprint, path.c_str());
  }

  // --- 2. Replay: the trace becomes a tenant on a fresh platform. ----------
  const Trace trace = read_trace(path);
  BEConfig cfg;
  cfg.name = "traced-kv";
  cfg.description = "replayed from " + path;
  cfg.rss = pages_to_bytes(trace.footprint_pages);
  cfg.cpu_ns_per_iter = 50.0;
  cfg.cores = 4;
  cfg.profile = profile_from_trace(trace, /*accesses_per_iteration=*/20.0);

  const TieredMemory::Config mc = TieredMemory::Config::two_tier(
      trace.footprint_pages / 4,  // room for a quarter of it
      trace.footprint_pages * 2);
  TieredMemory mem(mc);
  BEWorkload replica(mem, 0, cfg, kTierOnly(kFastestTier + 1), nullptr, 7);

  // --- 3. The replica's FMem sensitivity reflects the recorded skew. -------
  std::printf("\n%12s %16s\n", "FMem pages", "replayed rate");
  for (double frac : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const auto pages = static_cast<std::uint64_t>(frac * trace.footprint_pages);
    std::printf("%12llu %16.3e\n", (unsigned long long)pages, replica.rate_at_pages(pages));
  }
  const double gain10 =
      replica.rate_at_pages(trace.footprint_pages / 10) / replica.rate_at_pages(0);
  std::printf("\nzipf skew preserved: the hottest 10%% of pages buys a %.2fx speedup\n",
              gain10);
  std::printf("(a uniform trace would get ~%.2fx from the same allocation)\n",
              1.0 / (0.9 + 0.1 * 73.0 / 202.0));
  return gain10 > 1.3 ? 0 : 1;
}
