// The RL substrate standalone: train the from-scratch Soft Actor-Critic on a
// small continuous-control task (track a moving setpoint) and watch the
// learning curve — the same agent class PP-M uses to size the LC reservation.
//
//   ./rl_playground
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "rl/sac.h"

using namespace mtat;

int main() {
  // Environment: state = (position, setpoint); action nudges the position by
  // up to 0.2; reward = -|position - setpoint|. The optimal policy moves
  // toward the setpoint at full speed, then holds.
  SacConfig cfg;
  cfg.state_dim = 2;
  cfg.action_dim = 1;
  cfg.hidden = {32, 32};
  cfg.seed = 99;
  SacAgent agent(cfg);
  Rng rng(7);

  double pos = 0.0, target = 0.5;
  double episode_return = 0.0;
  int steps_in_episode = 0;
  std::printf("%8s %12s %10s %12s\n", "episode", "avg return", "alpha", "critic loss");
  for (int episode = 0; episode < 60; ++episode) {
    for (int step = 0; step < 50; ++step) {
      const std::vector<double> s = {pos, target};
      const auto a = agent.act(s);
      pos = std::clamp(pos + 0.2 * a[0], -1.0, 1.0);
      const double reward = -std::abs(pos - target);
      const std::vector<double> s2 = {pos, target};
      agent.observe(s, a, reward, s2, /*done=*/false);
      agent.update(1);
      episode_return += reward;
      ++steps_in_episode;
    }
    target = rng.next_double() * 2.0 - 1.0;  // new setpoint each episode
    if (episode % 10 == 9) {
      std::printf("%8d %12.3f %10.3f %12.4f\n", episode + 1,
                  episode_return / steps_in_episode, agent.alpha(),
                  agent.last_critic_loss());
      episode_return = 0.0;
      steps_in_episode = 0;
    }
  }

  // Evaluate deterministically: from a cold start, how close does the agent
  // get within 20 steps?
  double eval_err = 0.0;
  for (double t : {-0.8, -0.3, 0.4, 0.9}) {
    pos = 0.0;
    for (int step = 0; step < 20; ++step) {
      const auto a = agent.act({pos, t}, /*deterministic=*/true);
      pos = std::clamp(pos + 0.2 * a[0], -1.0, 1.0);
    }
    std::printf("setpoint %+.1f -> final position %+.3f\n", t, pos);
    eval_err += std::abs(pos - t);
  }
  std::printf("mean tracking error: %.3f (untrained agent: ~0.6)\n", eval_err / 4.0);
  return eval_err / 4.0 < 0.25 ? 0 : 1;
}
