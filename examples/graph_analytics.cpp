// Graph analytics on tiered memory, using the substrate as a standalone
// library: generate an R-MAT graph, lay it out over a simulated two-tier
// memory, run BFS / delta-stepping SSSP / PageRank, and show how each
// kernel's memory time responds to the FMem fraction — the raw material
// behind the BE throughput curves MTAT's SA partitioner optimizes over.
//
//   ./graph_analytics [scale]      (default scale 14: 16k vertices)
#include <cstdio>
#include <cstdlib>

#include "common/parse.h"
#include "workloads/graph/graph_layout.h"
#include "workloads/graph/kernels.h"

using namespace mtat;

int main(int argc, char** argv) {
  int scale = 14;
  if (argc > 1) {
    const auto parsed = parse_int(argv[1]);
    if (!parsed || *parsed < 1 || *parsed > 24) {
      std::fprintf(stderr, "usage: %s [scale 1-24]\n", argv[0]);
      return 2;
    }
    scale = *parsed;
  }
  Rng rng(2024);
  std::printf("generating R-MAT graph, scale %d...\n", scale);
  const Graph g = make_rmat_graph(scale, 16, rng);
  std::printf("  %llu vertices, %llu directed edges, footprint %.1f MiB\n",
              (unsigned long long)g.num_vertices(), (unsigned long long)g.num_edges(),
              static_cast<double>(GraphLayout::required_bytes(g)) / (1024.0 * 1024.0));

  std::printf("\n%8s %14s %14s %14s\n", "FMem", "BFS", "SSSP", "PageRank x3");
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // A fresh two-tier memory sized so `fraction` of the footprint fits FMem.
    const std::uint64_t pages = bytes_to_pages(GraphLayout::required_bytes(g));
    const TieredMemory::Config mc = TieredMemory::Config::two_tier(
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(fraction * pages)),
        pages + 16);
    TieredMemory mem(mc);
    AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kFastestFirst,
                       /*sample_period=*/1 << 20);
    GraphLayout layout(space, g);

    std::vector<std::uint64_t> dist;
    std::vector<double> rank;
    const KernelStats b = bfs(layout, 0, dist);
    const KernelStats s = sssp(layout, 0, /*delta=*/8, dist);
    const KernelStats p = pagerank(layout, 3, rank);
    std::printf("%7.0f%% %11.2f ms %11.2f ms %11.2f ms\n", fraction * 100,
                static_cast<double>(b.memory_latency) / 1e6,
                static_cast<double>(s.memory_latency) / 1e6,
                static_cast<double>(p.memory_latency) / 1e6);
  }
  std::printf("\nmemory time shrinks monotonically with the FMem share; the ratio\n"
              "between the 0%% and 100%% rows is each kernel's tiering sensitivity.\n");
  return 0;
}
