// Policy comparison on one co-location: why frequency-based tiering fails the
// LC tenant and what each alternative trades away.
//
// Runs MongoDB + {SSSP, BFS, PR, XSBench} under every policy on the same
// dynamic load and prints the LC/BE scorecard — a compact version of the
// paper's Figures 5-6 for a single LC workload.
//
//   ./policy_comparison
#include <cstdio>

#include "sim/colocation_sim.h"
#include "workloads/be/be_suite.h"

using namespace mtat;

int main() {
  SimConfig base;
  base.fmem = Bytes{128} * 1024 * 1024;
  base.smem = Bytes{2} * 1024 * 1024 * 1024;
  base.lc = mongodb_config();
  base.lc.n_records = 130'000;
  base.be = be_suite(BEScale::kTest, Bytes{140} * 1024 * 1024, 4, 4);

  std::printf("%-13s %10s %8s %10s %12s %9s\n", "policy", "LC P99ms", "viol%", "fairness",
              "BE tput", "mig MB/s");
  for (PolicyKind policy :
       {PolicyKind::kMtatFull, PolicyKind::kMtatLcOnly, PolicyKind::kMemtis,
        PolicyKind::kTpp, PolicyKind::kFmemAll, PolicyKind::kSmemAll}) {
    SimConfig cfg = base;
    cfg.policy = policy;
    ColocationSim sim(cfg);
    const LoadPattern load = LoadPattern::figure7(cfg.lc.max_load_krps * 1000.0);
    if (policy == PolicyKind::kMtatFull || policy == PolicyKind::kMtatLcOnly) {
      for (int e = 0; e < 3; ++e) sim.run(load, load.total_length(), false);
      sim.reset_stats();
    }
    sim.run(load, load.total_length());
    const SimResult r = sim.result();
    std::printf("%-13s %10.2f %7.1f%% %10.3f %12.3e %9.1f\n", policy_name(policy),
                r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness,
                r.be_total_throughput, r.migration_bytes_per_sec / 1e6);
  }
  std::printf("\nreading guide: MTAT keeps violations near zero at some BE throughput\n"
              "cost; MEMTIS/TPP maximize BE throughput but blow the LC SLO through the\n"
              "high-load phase, like SMEM_ALL; FMEM_ALL protects LC but starves BE.\n");
  return 0;
}
