// Multi-LC co-location: two latency-critical tenants with phase-shifted load
// peaks sharing one fast tier with two best-effort tenants, managed by the
// multi-LC MTAT extension (core/multi_lc_mtat.h — the direction §7 defers to
// future work).
//
// Tenant A (Redis-like) peaks in the first half of the run; tenant B
// (Memcached-like) peaks in the second half. Watch each reservation track
// its own tenant's load while the other stays small — per-tenant agents,
// one shared enforcement plane.
//
//   ./multi_lc_colocation
#include <cstdio>
#include <memory>

#include "core/multi_lc_mtat.h"
#include "loadgen/queue_sim.h"
#include "workloads/be/be_suite.h"
#include "workloads/lc/lc_workload.h"

using namespace mtat;

int main() {
  // Platform: the usual miniature tier pair.
  const TieredMemory::Config mc = TieredMemory::Config::two_tier(
      bytes_to_pages(Bytes{128} * 1024 * 1024),
      bytes_to_pages(Bytes{2} * 1024 * 1024 * 1024));
  TieredMemory mem(mc);
  MigrationEngine engine(mem, {4.0 * 1024 * 1024 * 1024});
  AccessSampler sampler(mem, 1024);

  // Two LC tenants, each sized to roughly half the fast tier.
  LCConfig a_cfg = redis_config();
  a_cfg.n_records = 65'000;
  LCConfig b_cfg = memcached_config();
  b_cfg.n_records = 16'000;
  LCWorkload lc_a(mem, 0, a_cfg, kTierOnly(kFastestTier + 1), 11);
  LCWorkload lc_b(mem, 1, b_cfg, kTierOnly(kFastestTier + 1), 22);
  lc_a.space().set_observer(&sampler);
  lc_b.space().set_observer(&sampler);

  // Two BE tenants fill the rest of the machine.
  std::vector<std::unique_ptr<BEWorkload>> be;
  WorkloadId id = 2;
  for (BEConfig& bc : be_suite(BEScale::kTest, Bytes{120} * 1024 * 1024, 4, 2)) {
    be.push_back(std::make_unique<BEWorkload>(mem, id, bc, kFastestFirst,
                                              &sampler, id * 31));
    ++id;
  }

  PolicyContext ctx;
  ctx.mem = &mem;
  ctx.engine = &engine;
  ctx.sampler = &sampler;
  ctx.tenants = {{0, true}, {1, true}, {2, false}, {3, false}};
  std::vector<BEPerfModel> models;
  for (auto& w : be) {
    BEWorkload* b = w.get();
    models.push_back({[b](std::uint64_t p) { return b->rate_at_pages(p) / b->perf_full(); },
                      b->space().num_pages()});
  }
  MultiLcMtatPolicy policy(ctx, seconds(1),
                           {{0, a_cfg.slo}, {1, b_cfg.slo}}, std::move(models), {});

  // Phase-shifted loads: A ramps early, B ramps late.
  const LoadPattern load_a({{seconds(20), 0.2 * a_cfg.max_load_krps * 1000},
                            {seconds(40), 0.9 * a_cfg.max_load_krps * 1000},
                            {seconds(60), 0.2 * a_cfg.max_load_krps * 1000}});
  const LoadPattern load_b({{seconds(60), 0.2 * b_cfg.max_load_krps * 1000},
                            {seconds(40), 0.9 * b_cfg.max_load_krps * 1000},
                            {seconds(20), 0.2 * b_cfg.max_load_krps * 1000}});
  QueueSim q_a(lc_a, seconds(1), 5), q_b(lc_b, seconds(1), 6);
  q_a.set_pattern(&load_a, 0);
  q_b.set_pattern(&load_b, 0);

  // Drive two passes of the pattern: the first trains the agents, the
  // second is reported.
  const Duration tick = milliseconds(10);
  const Duration span = seconds(120);
  std::printf("%6s %9s %9s | %9s %9s | %7s %7s\n", "t(s)", "A load", "B load", "A p99ms",
              "B p99ms", "A resv", "B resv");
  for (int pass = 0; pass < 2; ++pass) {
    SimTime start = static_cast<SimTime>(pass) * span;
    q_a.set_pattern(&load_a, start);
    q_b.set_pattern(&load_b, start);
    SimTime now = start, next_interval = start + seconds(1);
    while (now < start + span) {
      engine.begin_interval(tick);
      policy.on_tick(now, tick);
      for (auto& w : be) w->tick(tick);
      q_a.run_until(now + tick);
      q_b.run_until(now + tick);
      now += tick;
      if (now >= next_interval) {
        const Duration p99_a = q_a.recorder().collect_interval().percentile(99);
        const Duration p99_b = q_b.recorder().collect_interval().percentile(99);
        policy.report_lc_p99(1, p99_b);
        policy.on_interval(now, seconds(1), p99_a);
        next_interval += seconds(1);
        const auto t = to_seconds(now - start);
        if (pass == 1 && static_cast<int>(t) % 10 == 0)
          std::printf("%6.0f %9.0f %9.0f | %9.2f %9.2f | %7llu %7llu\n", t,
                      load_a.rate_at(now - start), load_b.rate_at(now - start),
                      static_cast<double>(p99_a) / 1e6, static_cast<double>(p99_b) / 1e6,
                      (unsigned long long)policy.lc_quota(0),
                      (unsigned long long)policy.lc_quota(1));
      }
    }
  }
  std::printf("\nA violations: %.2f%%   B violations: %.2f%%\n",
              100.0 * q_a.recorder().violation_rate(),
              100.0 * q_b.recorder().violation_rate());
  std::printf("each reservation tracks its own tenant's phase; the shared enforcement\n"
              "plane keeps the two partitions and the BE remainder isolated throughout.\n");
  return 0;
}
