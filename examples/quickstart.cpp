// Quickstart: the smallest complete MTAT setup.
//
// Builds a tiered memory (fast DRAM tier + slow CXL-like tier), co-locates a
// Redis-like latency-critical workload with two best-effort graph workloads,
// puts MTAT (Full) in charge of the fast tier, trains its RL partitioner on
// one pass of the dynamic load, and then measures a second pass: the LC P99
// must stay under the SLO while the BE workloads share the leftover FMem.
//
//   ./quickstart
#include <cstdio>

#include "sim/colocation_sim.h"
#include "workloads/be/be_suite.h"

using namespace mtat;

int main() {
  // 1. Describe the platform: 128 MiB of FMem (73 ns) over 2 GiB of SMem
  //    (202 ns), with 4 GB/s of page-migration bandwidth. These are the
  //    DESIGN.md §5 scaled defaults; scale them up freely.
  SimConfig cfg;
  cfg.fmem = Bytes{128} * 1024 * 1024;
  cfg.smem = Bytes{2} * 1024 * 1024 * 1024;

  // 2. The latency-critical tenant: a Redis-like store sized slightly larger
  //    than FMem (Table 1's oversubscription), serving uniform GETs under a
  //    20 ms P99 SLO.
  cfg.lc = redis_config();
  cfg.lc.n_records = 130'000;  // ~133 MiB of records

  // 3. Two best-effort tenants: SSSP and PageRank, their page-access profiles
  //    extracted from real kernel runs over simulated memory.
  cfg.be = be_suite(BEScale::kTest, Bytes{140} * 1024 * 1024, /*cores=*/4, /*n=*/2);

  // 4. The policy under test: MTAT (Full) — RL-sized LC reservation plus a
  //    simulated-annealing fairness split of the rest.
  cfg.policy = PolicyKind::kMtatFull;

  ColocationSim sim(cfg);
  std::printf("platform: FMem %llu pages, SMem %llu pages, LC RSS %llu pages\n",
              (unsigned long long)sim.mem().capacity(kFastestTier),
              (unsigned long long)sim.mem().capacity(kFastestTier + 1),
              (unsigned long long)sim.lc().space().num_pages());

  // 5. Drive the Figure-7 load trapezoid: one pass to train the RL agent,
  //    one measured pass.
  const LoadPattern load = LoadPattern::figure7(cfg.lc.max_load_krps * 1000.0);
  for (int epoch = 0; epoch < 3; ++epoch) sim.run(load, load.total_length(), false);
  sim.reset_stats();
  sim.run(load, load.total_length());

  // 6. Read the results.
  const SimResult r = sim.result();
  std::printf("\nLC  : P99 %.2f ms (SLO %.0f ms), violations %.2f%%, %llu requests\n",
              r.lc_p99_ms, static_cast<double>(cfg.lc.slo) / 1e6,
              100.0 * r.slo_violation_rate, (unsigned long long)r.lc_completed);
  for (std::size_t i = 0; i < sim.be_count(); ++i)
    std::printf("BE %s: %.3e iterations/s, normalized perf %.3f\n",
                sim.be(i).config().name.c_str(), r.be_rate[i], r.be_np[i]);
  std::printf("fairness (min NP) %.3f, BE fleet throughput %.3e/s\n", r.fairness,
              r.be_total_throughput);
  std::printf("\nallocation trace (every 30 s): t -> LC share of FMem\n  ");
  for (std::size_t i = 0; i < r.series.size(); i += 30)
    std::printf("%.0fs:%.2f  ", r.series[i].t_sec, r.series[i].lc_fmem_share);
  std::printf("\n");
  return r.slo_violation_rate < 0.05 ? 0 : 1;
}
