// Implementing your own tiering policy against the library's substrate.
//
// The entire policy surface is the TieringPolicy interface plus the
// PolicyContext plumbing (memory, migration engine, telemetry). This example
// builds a deliberately simple "static reserve" policy — pin a fixed
// fraction of FMem for the LC tenant, run MEMTIS-style hotness exchange for
// the rest — wires it into the simulation loop by hand, and compares it
// against MTAT. It is the template to copy when prototyping a new scheme.
//
//   ./custom_policy
#include <cstdio>
#include <memory>

#include "sim/colocation_sim.h"
#include "telemetry/page_hotness.h"
#include "workloads/be/be_suite.h"

using namespace mtat;

namespace {

/// A fixed LC reservation: the simplest possible LC-aware policy. Holds
/// `reserve_fraction` of FMem for the LC tenant (hottest pages resident) and
/// lets BE pages compete for the remainder by hotness.
class StaticReservePolicy : public TieringPolicy {
 public:
  StaticReservePolicy(const PolicyContext& ctx, double reserve_fraction)
      : ctx_(ctx),
        lc_quota_(static_cast<std::uint64_t>(
            reserve_fraction * static_cast<double>(ctx.mem->capacity(kFastestTier)))) {
    // One histogram per tenant, fed by the shared PEBS-like sampler.
    for (const TenantInfo& t : ctx_.tenants) {
      hist_.push_back(std::make_unique<PageHotness>(*ctx_.mem, t.id));
      hist_.back()->seed_allocated_pages();
      ctx_.sampler->add_sink(hist_.back().get());
    }
  }

  std::string name() const override { return "static_reserve"; }

  void on_tick(SimTime, Duration) override {
    TieredMemory& mem = *ctx_.mem;
    MigrationEngine& eng = *ctx_.engine;
    const WorkloadId lc = ctx_.lc_tenant().id;
    // 1. Enforce the LC reservation: promote LC pages (hottest first) while
    //    below quota, displacing the globally coldest BE page.
    while (mem.workload_pages(lc, kFastestTier) < lc_quota_ && eng.budget_pages() >= 2) {
      const auto up = pick(lc, kFastestTier + 1, /*hottest=*/true);
      const auto down = coldest_be_fmem_page();
      if (up == kInvalidPage || down == kInvalidPage) break;
      if (!eng.exchange(up, down)) break;
    }
    // 2. Hotness exchange for the residual (non-reserved) FMem: the hottest
    //    BE SMem page displaces the coldest unprotected FMem page — an LC
    //    page while LC sits above its reservation, a BE page otherwise.
    for (int i = 0; i < 256 && eng.budget_pages() >= 2; ++i) {
      PageId best_up = kInvalidPage;
      int best_bin = 0;
      for (std::size_t w = 0; w < ctx_.tenants.size(); ++w) {
        if (ctx_.tenants[w].is_lc) continue;
        const auto hot = hist_[w]->hottest_in_tier(kFastestTier + 1, 1);
        if (!hot.empty() && hist_[w]->bin_of_page(hot[0]) > best_bin) {
          best_bin = hist_[w]->bin_of_page(hot[0]);
          best_up = hot[0];
        }
      }
      const bool lc_above_reserve = mem.workload_pages(lc, kFastestTier) > lc_quota_;
      const PageId down =
          lc_above_reserve ? pick(lc, kFastestTier, /*hottest=*/false) : coldest_be_fmem_page();
      if (best_up == kInvalidPage || down == kInvalidPage) break;
      // LC pages above the reserve are fair game regardless of bin; among BE
      // pages, only displace strictly colder ones.
      if (!lc_above_reserve && best_bin <= bin_of(down)) break;
      if (!eng.exchange(best_up, down)) break;
    }
  }

  void on_interval(SimTime, Duration, Duration) override {
    for (auto& h : hist_) h->age();
  }

 private:
  PageId pick(WorkloadId w, TierId t, bool hottest) {
    for (std::size_t i = 0; i < ctx_.tenants.size(); ++i) {
      if (ctx_.tenants[i].id != w) continue;
      const auto v = hottest ? hist_[i]->hottest_in_tier(t, 1) : hist_[i]->coldest_in_tier(t, 1);
      if (!v.empty()) return v[0];
      const auto any = hist_[i]->coldest_in_tier(t, 1);
      return any.empty() ? kInvalidPage : any[0];
    }
    return kInvalidPage;
  }

  PageId coldest_be_fmem_page() {
    PageId best = kInvalidPage;
    int best_bin = PageHotness::kBins;
    for (std::size_t w = 0; w < ctx_.tenants.size(); ++w) {
      if (ctx_.tenants[w].is_lc) continue;
      const auto cold = hist_[w]->coldest_in_tier(kFastestTier, 1);
      if (!cold.empty() && hist_[w]->bin_of_page(cold[0]) < best_bin) {
        best_bin = hist_[w]->bin_of_page(cold[0]);
        best = cold[0];
      }
    }
    return best;
  }

  int bin_of(PageId p) {
    for (auto& h : hist_) {
      const int b = h->bin_of_page(p);
      if (b >= 0) return b;
    }
    return 0;
  }

  PolicyContext ctx_;
  std::uint64_t lc_quota_;
  std::vector<std::unique_ptr<PageHotness>> hist_;
};

/// Hand-rolled simulation loop: the pieces ColocationSim wires for you.
void run_custom(double reserve_fraction) {
  const TieredMemory::Config mc = TieredMemory::Config::two_tier(
      bytes_to_pages(Bytes{128} * 1024 * 1024),
      bytes_to_pages(Bytes{2} * 1024 * 1024 * 1024));
  TieredMemory mem(mc);
  MigrationEngine engine(mem, {4.0 * 1024 * 1024 * 1024});
  AccessSampler sampler(mem, 1024);

  LCConfig lc_cfg = redis_config();
  lc_cfg.n_records = 130'000;
  LCWorkload lc(mem, 0, lc_cfg, kFastestFirst, 1);
  lc.space().set_observer(&sampler);
  std::vector<std::unique_ptr<BEWorkload>> be;
  WorkloadId next_id = 1;
  for (BEConfig& bc : be_suite(BEScale::kTest, Bytes{140} * 1024 * 1024, 4, 2))
    be.push_back(std::make_unique<BEWorkload>(mem, next_id++, bc, kFastestFirst,
                                              &sampler, next_id));

  PolicyContext ctx;
  ctx.mem = &mem;
  ctx.engine = &engine;
  ctx.sampler = &sampler;
  ctx.tenants.push_back({0, true});
  for (std::size_t i = 0; i < be.size(); ++i)
    ctx.tenants.push_back({static_cast<WorkloadId>(i + 1), false});
  StaticReservePolicy policy(ctx, reserve_fraction);

  QueueSim queue(lc, seconds(1), 7);
  const LoadPattern load = LoadPattern::figure7(lc_cfg.max_load_krps * 1000.0);
  queue.set_pattern(&load, 0);

  const Duration tick = milliseconds(10);
  SimTime now = 0, next_interval = seconds(1);
  while (now < load.total_length()) {
    engine.begin_interval(tick);
    policy.on_tick(now, tick);
    for (auto& b : be) b->tick(tick);
    queue.run_until(now + tick);
    now += tick;
    if (now >= next_interval) {
      policy.on_interval(now, seconds(1), 0);
      next_interval += seconds(1);
    }
  }
  std::printf("reserve %3.0f%%: P99 %9.2f ms, violations %5.2f%%, LC FMem ratio %.2f\n",
              reserve_fraction * 100,
              static_cast<double>(queue.recorder().p99_series().back()) / 1e6,
              100.0 * queue.recorder().violation_rate(), mem.fmem_usage_ratio(0));
}

}  // namespace

int main() {
  std::printf("a custom 'static reserve' policy at several reservation sizes:\n");
  for (double f : {0.0, 0.25, 0.5, 0.75}) run_custom(f);
  std::printf("\nthe tradeoff a static reserve cannot escape: small reserves violate the\n"
              "SLO at peak load, large ones starve BE all the time — which is exactly\n"
              "the gap MTAT's adaptive reservation closes (see policy_comparison).\n");
  return 0;
}
